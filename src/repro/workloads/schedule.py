"""The 18-period workload intensity schedule (paper Figure 3).

The paper's run is 18 consecutive periods; the client count of every class is
constant within a period.  The exact per-period counts are not recoverable
from the degraded figure, so :func:`paper_schedule` reconstructs a schedule
satisfying every constraint the text states (see DESIGN.md §2):

* Class 3 (TPC-C) cycles low/medium/high = 15/20/25 clients, so its highs
  fall on periods 3, 6, 9, 12, 15, 18 and its lows on 1, 4, 7, 10, 13, 16.
* OLAP class counts stay within 2..6.
* Period 18 is the heaviest overall, with Class 1 = 2, Class 2 = 6,
  Class 3 = 25.
* Period 17 pairs medium OLTP intensity with high OLAP intensity.

:class:`ClientPoolManager` enforces a schedule over pools of closed-loop
clients, creating clients lazily and (de)activating them at period
boundaries.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.runtime import TimerService
from repro.workloads.client import ClosedLoopClient

#: Reconstructed per-period client counts (period 1 first).
_PAPER_CLASS1 = (2, 2, 3, 2, 3, 3, 4, 3, 4, 2, 2, 2, 3, 3, 4, 2, 3, 2)
_PAPER_CLASS2 = (2, 3, 3, 3, 3, 4, 3, 4, 4, 4, 5, 5, 4, 5, 4, 4, 5, 6)
_PAPER_CLASS3 = (15, 20, 25) * 6


class PeriodSchedule:
    """Per-class client counts for each period of a run."""

    def __init__(
        self,
        period_seconds: float,
        counts: Dict[str, Sequence[int]],
    ) -> None:
        if period_seconds <= 0:
            raise WorkloadError("period_seconds must be positive")
        if not counts:
            raise WorkloadError("schedule needs at least one class")
        lengths = {len(series) for series in counts.values()}
        if len(lengths) != 1:
            raise WorkloadError("all classes need the same number of periods")
        self.period_seconds = float(period_seconds)
        self.counts: Dict[str, Tuple[int, ...]] = {
            name: tuple(int(c) for c in series) for name, series in counts.items()
        }
        for name, series in self.counts.items():
            if any(c < 0 for c in series):
                raise WorkloadError("class {!r} has a negative client count".format(name))
        self.num_periods = lengths.pop()

    @property
    def horizon(self) -> float:
        """Total scheduled duration."""
        return self.period_seconds * self.num_periods

    @property
    def class_names(self) -> List[str]:
        """Classes covered by the schedule."""
        return sorted(self.counts)

    def period_at(self, time: float) -> int:
        """0-based period index for a simulation time.

        Times at or beyond the horizon are **clamped to the last period**:
        ``period_at(horizon)`` is ``num_periods - 1``, so end-of-run events
        (a query finishing exactly when the schedule ends) are attributed
        to the final period rather than raising.  Callers that must
        distinguish "inside the schedule" from "after it" should guard
        with :meth:`within_horizon` first.

        Exact period boundaries belong to the *starting* period:
        ``t == k * period_seconds`` maps to period ``k`` (not ``k - 1``),
        even when floating-point division of ``t / period_seconds`` lands
        fractionally below ``k``.
        """
        if time < 0:
            raise WorkloadError("negative time {}".format(time))
        index = int(time / self.period_seconds)
        # Boundary guards: t == k * period_seconds can divide to a hair
        # below (or above) k when period_seconds is not a binary fraction.
        if (index + 1) * self.period_seconds <= time:
            index += 1
        elif index > 0 and index * self.period_seconds > time:
            index -= 1
        return min(index, self.num_periods - 1)

    def within_horizon(self, time: float) -> bool:
        """Whether ``time`` falls inside the scheduled run (``0 <= t < horizon``).

        :meth:`period_at` / :meth:`count_at` clamp out-of-range times to
        the last period; use this guard when clamping would silently
        mis-attribute an event that happens after the schedule is over.
        """
        return 0 <= time < self.horizon

    def count_at(self, class_name: str, time: float) -> int:
        """Scheduled client count of a class at a simulation time.

        Like :meth:`period_at`, times at or past the horizon are clamped
        to the last period; guard with :meth:`within_horizon` when the
        schedule being over must read as "zero clients" instead.
        """
        return self.counts[class_name][self.period_at(time)]

    def peak_count(self, class_name: str) -> int:
        """Largest scheduled client count of a class."""
        return max(self.counts[class_name])

    def scaled(self, period_seconds: float) -> "PeriodSchedule":
        """Same shape on a different period length."""
        return PeriodSchedule(period_seconds, dict(self.counts))


def paper_schedule(period_seconds: float = 120.0) -> PeriodSchedule:
    """The reconstructed Figure 3 schedule (see module docstring)."""
    return PeriodSchedule(
        period_seconds,
        {
            "class1": _PAPER_CLASS1,
            "class2": _PAPER_CLASS2,
            "class3": _PAPER_CLASS3,
        },
    )


def constant_schedule(
    period_seconds: float,
    num_periods: int,
    counts: Dict[str, int],
) -> PeriodSchedule:
    """A flat schedule (used by calibration and the Figure 2 experiment)."""
    return PeriodSchedule(
        period_seconds,
        {name: [count] * num_periods for name, count in counts.items()},
    )


ClientBuilder = Callable[[str, str], ClosedLoopClient]


class ClientPoolManager:
    """Drives client pools through a :class:`PeriodSchedule`.

    Parameters
    ----------
    sim:
        The simulator (period boundaries become scheduled events).
    schedule:
        The intensity schedule to enforce.
    client_builder:
        ``(class_name, client_id) -> ClosedLoopClient``; called lazily the
        first time a slot is needed.  Clients are reused across periods so
        client ids — and hence snapshot-monitor connections — are stable.
    """

    def __init__(
        self,
        sim: TimerService,
        schedule: PeriodSchedule,
        client_builder: ClientBuilder,
    ) -> None:
        self.sim = sim
        self.schedule = schedule
        self.client_builder = client_builder
        self._pools: Dict[str, List[ClosedLoopClient]] = {
            name: [] for name in schedule.counts
        }
        self._started = False

    def pool(self, class_name: str) -> List[ClosedLoopClient]:
        """All clients ever created for a class (active or not)."""
        return list(self._pools[class_name])

    def active_count(self, class_name: str) -> int:
        """Clients of the class currently in the submit loop."""
        return sum(1 for c in self._pools[class_name] if c.active)

    def start(self) -> None:
        """Install period-boundary events and apply period 1 immediately."""
        if self._started:
            raise WorkloadError("ClientPoolManager started twice")
        self._started = True
        for period in range(self.schedule.num_periods):
            at = self.sim.now + period * self.schedule.period_seconds
            self.sim.schedule_at(
                at,
                lambda p=period: self._apply_period(p),
                label="schedule:period:{}".format(period + 1),
                priority=-1,  # adjust intensity before same-instant work
            )

    def _apply_period(self, period: int) -> None:
        for class_name, series in self.schedule.counts.items():
            self._resize(class_name, series[period])

    def _resize(self, class_name: str, target: int) -> None:
        pool = self._pools[class_name]
        while len(pool) < target:
            client_id = "{}-c{}".format(class_name, len(pool))
            pool.append(self.client_builder(class_name, client_id))
        for index, client in enumerate(pool):
            if index < target:
                client.activate()
            else:
                client.deactivate()
