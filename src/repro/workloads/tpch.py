"""TPC-H-like OLAP workload.

The paper's OLAP workload is TPC-H on a 500 MB database with the four most
expensive queries (16, 19, 20 and 21 in our digit-reconstructed reading)
*excluded* from the submitted workload.  We model all 22 templates —
including the excluded monsters, which remain available for stress tests and
for exercising the cost-group policy's "large" band — with demands whose
relative magnitudes follow the well-known complexity ordering of the TPC-H
suite, scaled so that queries run tens to a couple of hundred seconds on the
simulated 2-CPU / 17-disk server (matching the minutes-scale queries of the
paper's 8-minute periods after our 4x time scaling; DESIGN.md §4).

Demands are I/O-leaning (the paper: "OLAP queries tend to be I/O intensive")
but carry a substantial CPU component — joins, sorts and aggregations — which
is the physical channel through which OLAP admission steals capacity from the
CPU-bound OLTP class (Figure 2).
"""

from __future__ import annotations

from typing import Tuple

from repro.workloads.spec import QueryTemplate, WorkloadMix

#: Queries excluded from the submitted workload ("Four very large queries
#: (queries 16, 19, 20 and 21) are excluded from the TPC-H workload").
TPCH_EXCLUDED: Tuple[str, ...] = ("q16", "q19", "q20", "q21")

#: Default number of CPU<->IO interleavings per OLAP query.  More rounds
#: couple OLAP CPU pressure to OLTP latency more smoothly but cost events.
OLAP_ROUNDS = 4

#: Intra-query degree of parallelism for DSS queries (DB2 intra-partition
#: parallelism): each phase fans out into this many concurrent sub-jobs.
OLAP_PARALLELISM = 2

#: (name, cpu_demand_s, io_demand_s) for all 22 TPC-H templates, on the
#: simulated server's demand scale.  The four excluded templates are an
#: order of magnitude above the rest, which is exactly why the paper's
#: authors dropped them.
_TPCH_DEMANDS: Tuple[Tuple[str, float, float], ...] = (
    ("q1", 4.5, 7.4),
    ("q2", 0.9, 1.5),
    ("q3", 3.5, 6.0),
    ("q4", 1.7, 2.9),
    ("q5", 4.0, 7.0),
    ("q6", 2.0, 3.5),
    ("q7", 3.8, 6.4),
    ("q8", 4.2, 7.4),
    ("q9", 7.0, 11.9),
    ("q10", 3.2, 5.4),
    ("q11", 1.0, 1.7),
    ("q12", 2.0, 3.8),
    ("q13", 2.5, 4.0),
    ("q14", 1.5, 2.5),
    ("q15", 2.0, 3.5),
    ("q16", 14.9, 37.3),
    ("q17", 2.2, 4.5),
    ("q18", 6.0, 9.9),
    ("q19", 22.3, 54.6),
    ("q20", 18.6, 44.7),
    ("q21", 24.8, 64.5),
    ("q22", 1.3, 2.2),
)


def tpch_template(name: str, weight: float = 1.0) -> QueryTemplate:
    """Build a single TPC-H template by query name (``"q1"``..``"q22"``)."""
    for template_name, cpu, io in _TPCH_DEMANDS:
        if template_name == name:
            return QueryTemplate(
                name=template_name,
                kind="olap",
                cpu_demand=cpu,
                io_demand=io,
                rounds=OLAP_ROUNDS,
                weight=weight,
                variability=0.25,
                parallelism=OLAP_PARALLELISM,
            )
    raise KeyError("unknown TPC-H template {!r}".format(name))


def tpch_mix(
    include_excluded: bool = False,
    name: str = "tpch",
) -> WorkloadMix:
    """The TPC-H workload mix.

    Parameters
    ----------
    include_excluded:
        When True the four monster queries are part of the mix (the paper's
        experiments never include them; calibration/stress tests may).
    """
    templates = []
    for template_name, _cpu, _io in _TPCH_DEMANDS:
        if not include_excluded and template_name in TPCH_EXCLUDED:
            continue
        templates.append(tpch_template(template_name))
    return WorkloadMix(name, templates)
