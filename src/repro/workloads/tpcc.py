"""TPC-C-like OLTP workload.

The paper's OLTP workload is TPC-C (50 warehouses) driven by interactive
clients with zero think time.  We model the five standard transaction types
with the standard mix percentages.  Demands are CPU-leaning ("OLTP queries
are CPU intensive", Section 3.2) and sub-second at light load, so that the
Query Patroller's per-query interception overhead — a couple hundred
milliseconds — genuinely "significantly outweigh[s] the sub-second execution
time of the OLTP queries" (Section 3), which is the reason the OLTP class is
controlled indirectly.
"""

from __future__ import annotations

from typing import Tuple

from repro.workloads.spec import QueryTemplate, WorkloadMix

#: (name, weight_percent, cpu_demand_s, io_demand_s) for the 5 standard
#: TPC-C transactions with the standard mix.
_TPCC_TRANSACTIONS: Tuple[Tuple[str, float, float, float], ...] = (
    ("new_order", 45.0, 0.019, 0.007),
    ("payment", 43.0, 0.0105, 0.0035),
    ("order_status", 4.0, 0.007, 0.003),
    ("delivery", 4.0, 0.026, 0.010),
    ("stock_level", 4.0, 0.0155, 0.009),
)


def tpcc_template(name: str) -> QueryTemplate:
    """Build a single TPC-C transaction template by name."""
    for template_name, weight, cpu, io in _TPCC_TRANSACTIONS:
        if template_name == name:
            return QueryTemplate(
                name=template_name,
                kind="oltp",
                cpu_demand=cpu,
                io_demand=io,
                rounds=1,
                weight=weight,
                variability=0.30,
            )
    raise KeyError("unknown TPC-C transaction {!r}".format(name))


def tpcc_mix(name: str = "tpcc") -> WorkloadMix:
    """The TPC-C workload mix with the standard transaction percentages."""
    return WorkloadMix(
        name, [tpcc_template(t[0]) for t in _TPCC_TRANSACTIONS]
    )


def mean_transaction_demand() -> Tuple[float, float]:
    """Weight-averaged (cpu, io) demand of one transaction (for tests)."""
    total_weight = sum(t[1] for t in _TPCC_TRANSACTIONS)
    cpu = sum(t[1] * t[2] for t in _TPCC_TRANSACTIONS) / total_weight
    io = sum(t[1] * t[3] for t in _TPCC_TRANSACTIONS) / total_weight
    return cpu, io
