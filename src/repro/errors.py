"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this package derive from :class:`ReproError` so that
callers can catch everything the library raises with a single handler while
still being able to discriminate the failure category.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class SimulationError(ReproError):
    """The simulation kernel detected an internal inconsistency.

    These indicate a bug in the simulation (e.g. an event scheduled in the
    past) rather than a misuse of the public API.
    """


class SchedulingError(ReproError):
    """The Query Scheduler was asked to do something invalid.

    Examples: dispatching a query for an unknown service class, installing a
    scheduling plan whose limits exceed the system cost limit.
    """


class WorkloadError(ReproError):
    """A workload definition is invalid (unknown template, empty mix, ...)."""


class ExperimentError(ReproError):
    """An experiment run failed to execute.

    Raised by harnesses that cannot tolerate a partial batch (e.g. a
    configuration sweep, where a missing point would silently skew the
    curve); the message carries the failing run's error and traceback.
    """


class InvariantViolation(ReproError):
    """A runtime invariant over the live control loop does not hold.

    Raised by the validation harness in strict mode when a registered
    :class:`~repro.validation.Invariant` of severity ERROR or above fails —
    the controller's internal accounting has drifted from the engine's
    ground truth (exactly the class of bug a closed control loop masks).
    """


class MetricsError(ReproError):
    """A metrics or observability query is invalid.

    Examples: asking a collector for an unknown metric name, registering
    the same instrument name under two different kinds, or incrementing a
    callback-backed instrument.
    """


class ExportError(ReproError):
    """Writing an artifact (telemetry, spans, results) to disk failed.

    The common case is overwrite protection: exporters refuse to clobber
    an existing file unless the caller passes ``overwrite=True`` — a
    multi-shard run writing several artifacts into one directory must
    never silently truncate a sibling shard's records.
    """


class PatrollerError(ReproError):
    """The Query Patroller substrate was driven through an illegal transition.

    Examples: releasing a query that was never intercepted, or releasing the
    same query twice.
    """

class ScenarioError(ReproError):
    """A scenario document is invalid or cannot be resolved.

    Examples: a YAML file that fails schema validation, an unknown
    generator name in a ``clients:`` curve, a fault scheduled past the
    schedule horizon, or a scenario name that matches neither the library
    nor a file path.
    """


class BenchError(ReproError):
    """A benchmark run or benchmark artifact is invalid.

    Examples: a ``BENCH_*.json`` file that fails schema validation, an
    unknown benchmark name passed to ``repro bench --only``, or a compare
    between reports with no benchmarks in common.
    """
