"""The sharded experiment description and its compilation to shard specs.

A :class:`ShardedExperimentSpec` wraps one base
:class:`~repro.experiments.runner.ExperimentSpec` and says how to scale
it out: how many engine shards, which routing policy spreads the client
sessions, and how the global system cost limit is partitioned.  Each
shard compiles to a complete, independently runnable ``ExperimentSpec``
— its own backend, Query Patroller, controller stack, schedule slice,
seed, and cost-limit share — so the existing single-deployment run path
(and every guarantee it carries) is reused unchanged per shard.

Determinism contract: per-shard seeds are ``base_seed + i * seed_stride``
(shard 0 keeps the base seed), routing is deterministic, and the cost
split is deterministic, so the same sharded spec always produces the
same shard specs.  With ``shards == 1`` the base spec is returned
*unchanged* — no schedule resolution or partition round-trip — so a
one-shard run is bit-identical to the unsharded run and stays pinned by
the existing golden data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.config import default_config
from repro.core.service_class import ServiceClass, paper_classes
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec, default_schedule
from repro.shard.router import (
    ROUTER_NAMES,
    make_router,
    partition_schedule,
    routed_demand,
)
from repro.workloads.schedule import PeriodSchedule
from repro.workloads.tpcc import tpcc_mix
from repro.workloads.tpch import tpch_mix

#: Cost-limit rebalancing modes: ``"static"`` splits the global limit
#: once up front (shards may then run in parallel worker processes);
#: ``"interval"`` re-splits every control interval from live demand
#: (lockstep, in-process, ``jobs=1`` only).
REBALANCE_MODES = ("static", "interval")

#: Default seed distance between adjacent shards' RNG streams.
DEFAULT_SEED_STRIDE = 1000


def default_class_weights(classes: Sequence[ServiceClass]) -> Dict[str, float]:
    """Relative per-client resource demand of each class.

    The cost-aware router's (and the cost splitter's) weight signal: the
    weighted mean template demand (CPU + IO) of the class's workload mix
    — OLAP classes draw from the TPC-H mix, OLTP classes from TPC-C,
    mirroring :func:`~repro.experiments.runner.build_bundle`'s mix
    assignment.
    """
    olap = tpch_mix()
    oltp = tpcc_mix()
    weights: Dict[str, float] = {}
    for service_class in classes:
        mix = olap if service_class.kind == "olap" else oltp
        total_weight = sum(t.weight for t in mix.templates)
        weights[service_class.name] = sum(
            t.weight * (t.cpu_demand + t.io_demand) for t in mix.templates
        ) / total_weight
    return weights


def split_cost_limit(
    total: float, demands: Sequence[float], floor: float
) -> List[float]:
    """Partition a global cost limit proportionally to per-shard demand.

    Every shard gets at least ``floor`` (the solver's per-deployment
    minimum — below it the per-shard :class:`PerformanceSolver` cannot
    give every class its ``min_class_limit``); the remainder is spread
    proportionally to ``demands`` (equally when total demand is zero).
    The returned shares sum *exactly* to ``total`` — the last share is
    pinned to the remainder so float error can never break the
    cost-partition invariant.
    """
    count = len(demands)
    if count < 1:
        raise ConfigurationError("cost split needs at least one shard")
    if total < floor * count:
        raise ConfigurationError(
            "system cost limit {:g} cannot give {} shards their minimum of "
            "{:g} timerons each (needs >= {:g}); raise the scenario's "
            "control.system_cost_limit or reduce the shard count".format(
                total, count, floor, floor * count
            )
        )
    spare = total - floor * count
    total_demand = float(sum(demands))
    if total_demand > 0:
        shares = [floor + spare * d / total_demand for d in demands]
    else:
        shares = [floor + spare / count for _ in demands]
    shares[-1] = total - sum(shares[:-1])
    return shares


@dataclass
class ShardedExperimentSpec:
    """One sharded deployment, as data.

    ``base`` describes what every shard runs (controller, backend,
    invariant mode, configuration); the sharding fields describe how the
    fleet is laid out.  :meth:`shard_specs` compiles to one
    ``ExperimentSpec`` per shard.
    """

    base: ExperimentSpec = field(default_factory=ExperimentSpec)
    shards: int = 1
    router: str = "hash"
    rebalance: str = "static"
    seed_stride: int = DEFAULT_SEED_STRIDE

    def validate(self) -> "ShardedExperimentSpec":
        """Structural validation; returns ``self`` for chaining."""
        if not isinstance(self.shards, int) or isinstance(self.shards, bool) or self.shards < 1:
            raise ConfigurationError(
                "shards must be a positive integer, got {!r}".format(self.shards)
            )
        if self.router not in ROUTER_NAMES:
            raise ConfigurationError(
                "unknown router {!r}; expected one of {}".format(
                    self.router, ROUTER_NAMES
                )
            )
        if self.rebalance not in REBALANCE_MODES:
            raise ConfigurationError(
                "unknown rebalance mode {!r}; expected one of {}".format(
                    self.rebalance, REBALANCE_MODES
                )
            )
        if not isinstance(self.seed_stride, int) or self.seed_stride < 1:
            raise ConfigurationError(
                "seed_stride must be a positive integer, got {!r}".format(
                    self.seed_stride
                )
            )
        if self.shards > 1:
            # Compile eagerly: surfaces an under-provisioned cost limit
            # (or any schedule/partition problem) at validation time.
            self.shard_specs()
        return self

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def resolved_classes(self) -> List[ServiceClass]:
        """The service classes every shard runs."""
        if self.base.classes is not None:
            return list(self.base.classes)
        return list(paper_classes())

    def resolved_schedule(self) -> PeriodSchedule:
        """The *global* schedule before partitioning (backend-aware)."""
        if self.base.schedule is not None:
            return self.base.schedule
        config = (self.base.config or default_config()).validate()
        return default_schedule(config, self.resolved_classes(), self.base.backend)

    def cost_floor(self) -> float:
        """Minimum viable per-shard cost limit.

        Each shard runs its own solver over all classes, and the solver
        refuses a limit that cannot give every class
        ``max(min_class_limit, grid_timerons)``.
        """
        config = (self.base.config or default_config()).validate()
        per_class = max(
            config.planner.min_class_limit, config.planner.grid_timerons
        )
        return per_class * len(self.resolved_classes())

    def shard_schedules(self) -> List[PeriodSchedule]:
        """The routed per-shard schedules (global schedule for 1 shard)."""
        schedule = self.resolved_schedule()
        if self.shards == 1:
            return [schedule]
        router = make_router(
            self.router, default_class_weights(self.resolved_classes())
        )
        return partition_schedule(schedule, self.shards, router)

    def shard_cost_limits(self) -> List[float]:
        """Static per-shard cost-limit shares (sum exactly to the global)."""
        config = (self.base.config or default_config()).validate()
        if self.shards == 1:
            return [config.system_cost_limit]
        weights = default_class_weights(self.resolved_classes())
        demands = routed_demand(self.shard_schedules(), weights)
        return split_cost_limit(
            config.system_cost_limit, demands, self.cost_floor()
        )

    def shard_specs(self) -> List[ExperimentSpec]:
        """One complete, runnable ``ExperimentSpec`` per shard.

        With ``shards == 1`` the base spec is returned unchanged (the
        bit-identity guarantee).  Otherwise shard ``i`` gets the routed
        schedule slice, seed ``base_seed + i * seed_stride``, and its
        static cost-limit share.
        """
        if self.shards == 1:
            return [self.base]
        config = (self.base.config or default_config()).validate()
        schedules = self.shard_schedules()
        limits = self.shard_cost_limits()
        classes = self.resolved_classes()
        specs: List[ExperimentSpec] = []
        for index in range(self.shards):
            shard_config = config.with_updates(
                seed=config.seed + index * self.seed_stride,
                system_cost_limit=limits[index],
            )
            specs.append(
                self.base.with_overrides(
                    config=shard_config,
                    schedule=schedules[index],
                    classes=list(classes),
                )
            )
        return specs

    def with_overrides(self, **changes) -> "ShardedExperimentSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
