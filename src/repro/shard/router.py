"""Routing policies: how client sessions spread across engine shards.

The sharded control plane (see :mod:`repro.shard`) runs N independent
engine shards, each a complete deployment with its own deterministic
event loop.  Cross-shard coordination therefore happens at *admission
granularity*: each (class, period) cell of the global
:class:`~repro.workloads.schedule.PeriodSchedule` carries a client-session
count, and a :class:`Router` partitions that count into per-shard counts.
Every policy is deterministic — the same schedule, shard count and policy
always produce the same partition, in any process (builtin ``hash()`` is
salted per interpreter, so the hash policy uses ``zlib.crc32``).

Three policies ship:

``"hash"``
    Spreads individual client slots by CRC32 of ``class:period:slot`` —
    stateless, uniform in expectation, oblivious to cost.
``"least-loaded"``
    Greedy count balancing: each slot goes to the shard with the fewest
    clients so far *this period* (loads reset at period boundaries, so
    the routing re-balances whenever the workload mix shifts).
``"cost-aware"``
    Greedy *cost* balancing: like least-loaded, but each client carries
    its class's mean per-query resource demand as weight, so a shard
    full of heavy OLAP sessions receives fewer of them than a shard full
    of light OLTP sessions.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.workloads.schedule import PeriodSchedule

#: Routing policy names accepted by :func:`make_router`.
ROUTER_NAMES = ("hash", "least-loaded", "cost-aware")


class Router:
    """Base routing policy: split one (class, period) count across shards.

    Subclasses implement :meth:`split`; :meth:`begin_period` is a hook
    for per-period state resets.  The contract every policy must keep:
    the returned list has exactly ``num_shards`` non-negative entries
    summing to ``count`` (the conservation invariant checks this again
    end-to-end), and the same inputs always yield the same output.
    """

    name = "base"

    def begin_period(self, period: int) -> None:
        """Called once before the period's classes are split (in order)."""

    def split(self, class_name: str, period: int, count: int, num_shards: int) -> List[int]:
        """Per-shard client counts for one (class, period) cell."""
        raise NotImplementedError


class HashRouter(Router):
    """Stateless spread by CRC32 of ``class:period:slot``.

    Each of the cell's ``count`` client slots is hashed independently, so
    two classes with equal counts still land on different shards.  CRC32
    (not builtin ``hash``) keeps the placement identical across worker
    processes and interpreter runs.
    """

    name = "hash"

    def split(self, class_name: str, period: int, count: int, num_shards: int) -> List[int]:
        counts = [0] * num_shards
        for slot in range(count):
            key = "{}:{}:{}".format(class_name, period, slot).encode("ascii")
            counts[zlib.crc32(key) % num_shards] += 1
        return counts


class LeastLoadedRouter(Router):
    """Greedy count balancing with per-period load reset.

    Assigns each client slot to the shard carrying the fewest clients so
    far in the current period (ties break toward the lowest shard
    index).  Because loads reset at every period boundary, a workload
    shift — a class ramping from 5 to 500 clients — is re-spread from
    scratch rather than skewed by stale history.
    """

    name = "least-loaded"

    def __init__(self) -> None:
        self._loads: List[float] = []

    def begin_period(self, period: int) -> None:
        self._loads = []

    def _weight(self, class_name: str) -> float:
        return 1.0

    def split(self, class_name: str, period: int, count: int, num_shards: int) -> List[int]:
        if len(self._loads) != num_shards:
            self._loads = [0.0] * num_shards
        counts = [0] * num_shards
        weight = self._weight(class_name)
        for _ in range(count):
            shard = min(range(num_shards), key=lambda i: (self._loads[i], i))
            counts[shard] += 1
            self._loads[shard] += weight
        return counts


class CostAwareRouter(LeastLoadedRouter):
    """Greedy cost balancing: clients weighted by mean per-query demand.

    ``class_weights`` maps class names to relative resource demands —
    the sharded spec derives them from the class's workload mix (mean
    template CPU+IO demand), so one TPC-H session counts for roughly a
    hundred TPC-C sessions.  Classes without a weight count as 1.0.
    """

    name = "cost-aware"

    def __init__(self, class_weights: Optional[Dict[str, float]] = None) -> None:
        super().__init__()
        self.class_weights = dict(class_weights or {})

    def _weight(self, class_name: str) -> float:
        weight = float(self.class_weights.get(class_name, 1.0))
        return weight if weight > 0 else 1.0


def make_router(
    name: str, class_weights: Optional[Dict[str, float]] = None
) -> Router:
    """Build a routing policy by name (see :data:`ROUTER_NAMES`).

    ``class_weights`` feeds the cost-aware policy and is ignored by the
    others, so callers can pass it unconditionally.
    """
    if name == "hash":
        return HashRouter()
    if name == "least-loaded":
        return LeastLoadedRouter()
    if name == "cost-aware":
        return CostAwareRouter(class_weights)
    raise ConfigurationError(
        "unknown router {!r}; expected one of {}".format(name, ROUTER_NAMES)
    )


def partition_schedule(
    schedule: PeriodSchedule,
    num_shards: int,
    router: Router,
) -> List[PeriodSchedule]:
    """Split a global schedule into one per-shard schedule per shard.

    Walks periods in order and, within each period, class names in
    sorted order (a deterministic traversal, so stateful routers see the
    same sequence every time), asking ``router`` to split each cell's
    client count.  Every shard's schedule has the same period length and
    period count as the global one — a shard receiving zero clients in a
    period simply idles through it.

    The per-cell counts across the returned schedules sum exactly to the
    global schedule's (checked here eagerly, and again end-to-end by the
    routing-conservation invariant).
    """
    if num_shards < 1:
        raise ConfigurationError("num_shards must be >= 1")
    per_shard: List[Dict[str, List[int]]] = [
        {name: [0] * schedule.num_periods for name in schedule.counts}
        for _ in range(num_shards)
    ]
    for period in range(schedule.num_periods):
        router.begin_period(period)
        for class_name in sorted(schedule.counts):
            count = schedule.counts[class_name][period]
            shares = router.split(class_name, period, count, num_shards)
            if len(shares) != num_shards or any(s < 0 for s in shares) or sum(shares) != count:
                raise ConfigurationError(
                    "router {!r} returned an invalid split {} for {} clients "
                    "of {!r} in period {}".format(
                        router.name, shares, count, class_name, period
                    )
                )
            for shard, share in enumerate(shares):
                per_shard[shard][class_name][period] = share
    return [
        PeriodSchedule(schedule.period_seconds, counts) for counts in per_shard
    ]


def routed_demand(
    shard_schedules: Sequence[PeriodSchedule],
    class_weights: Optional[Dict[str, float]] = None,
) -> List[float]:
    """Cost-weighted client volume routed to each shard.

    The static cost-partition signal: ``sum over (class, period)`` of the
    routed client count times the class's weight.  Uniform weights (the
    default) reduce this to total routed client-periods.
    """
    weights = class_weights or {}
    demands: List[float] = []
    for schedule in shard_schedules:
        total = 0.0
        for class_name, series in schedule.counts.items():
            weight = float(weights.get(class_name, 1.0))
            total += weight * sum(series)
        demands.append(total)
    return demands
