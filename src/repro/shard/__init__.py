"""The sharded multi-engine control plane.

Scales the single-deployment control loop out to a fleet: N engine
shards — each a complete execution backend with its own Query Patroller,
Monitor/Planner/Dispatcher stack, and deterministic event loop — under
one global coordinator that routes client sessions across shards
(:mod:`repro.shard.router`), partitions the global system cost limit
(:mod:`repro.shard.spec`), runs the fleet and rebalances
(:mod:`repro.shard.coordinator`), checks cross-shard invariants
(:mod:`repro.shard.invariants`), and merges per-shard results into one
report (:mod:`repro.shard.report`).

Entry points: build a :class:`ShardedExperimentSpec` (or compile one
from a scenario's ``shards:`` block / the ``repro run --shards`` flags)
and hand it to :func:`run_sharded`.
"""

from repro.shard.coordinator import ShardedRunResult, run_sharded
from repro.shard.invariants import (
    check_completion_conservation,
    check_cost_partition,
    check_routing_conservation,
)
from repro.shard.report import (
    ShardedRunReport,
    ShardRow,
    build_sharded_report,
    export_shard_telemetry,
    format_sharded_report,
    save_sharded_report,
    shard_path,
    sharded_report_to_dict,
)
from repro.shard.router import (
    ROUTER_NAMES,
    CostAwareRouter,
    HashRouter,
    LeastLoadedRouter,
    Router,
    make_router,
    partition_schedule,
    routed_demand,
)
from repro.shard.spec import (
    DEFAULT_SEED_STRIDE,
    REBALANCE_MODES,
    ShardedExperimentSpec,
    default_class_weights,
    split_cost_limit,
)

__all__ = [
    "DEFAULT_SEED_STRIDE",
    "REBALANCE_MODES",
    "ROUTER_NAMES",
    "CostAwareRouter",
    "HashRouter",
    "LeastLoadedRouter",
    "Router",
    "ShardRow",
    "ShardedExperimentSpec",
    "ShardedRunReport",
    "ShardedRunResult",
    "build_sharded_report",
    "check_completion_conservation",
    "check_cost_partition",
    "check_routing_conservation",
    "default_class_weights",
    "export_shard_telemetry",
    "format_sharded_report",
    "make_router",
    "partition_schedule",
    "routed_demand",
    "run_sharded",
    "save_sharded_report",
    "shard_path",
    "sharded_report_to_dict",
    "split_cost_limit",
]
