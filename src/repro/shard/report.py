"""Cross-shard result merging, formatting, and export.

One sharded run produces N independent
:class:`~repro.experiments.parallel.RunSummary` objects.  This module
folds them into a single :class:`ShardedRunReport` with the aggregation
semantics the paper's SLO report needs:

* per-class attainment is **completion-weighted** across shards
  (:func:`repro.metrics.aggregate.weighted_attainment`) — a shard that
  completed 40 queries must not weigh the same as one that completed
  40,000;
* per-class tail latency comes from **merged histograms**
  (:func:`repro.metrics.aggregate.merge_histogram_states`), not from
  averaging per-shard percentiles (percentiles do not average).

Per-shard telemetry exports derive suffixed sibling paths
(``out.jsonl`` → ``out.shard00.jsonl``) and go through the
overwrite-guarded :meth:`~repro.metrics.telemetry.TelemetryStore.save_jsonl`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.parallel import RunSummary
from repro.metrics.aggregate import merge_histogram_states, weighted_attainment
from repro.validation import Violation


def shard_path(path: str, index: int) -> str:
    """The per-shard sibling of an export path: ``out.jsonl`` →
    ``out.shard00.jsonl`` (suffix appended when there is no extension)."""
    root, ext = os.path.splitext(path)
    return "{}.shard{:02d}{}".format(root, index, ext)


@dataclass
class ShardRow:
    """One shard's line in the cross-shard report."""

    index: int
    label: str
    seed: int
    cost_limit: float
    total_completions: int
    attainment: Dict[str, float]


@dataclass
class ShardedRunReport:
    """The merged outcome of one sharded run."""

    shards: int
    router: str
    rebalance: str
    class_names: List[str]
    #: Completion-weighted per-class attainment across all shards.
    attainment: Dict[str, float]
    #: Total completed queries per class across all shards.
    completions: Dict[str, int]
    total_completions: int
    #: Per-class tail latency from cross-shard merged histograms
    #: (``{"p50": ..., "p95": ..., "p99": ...}``; absent when idle).
    percentiles: Dict[str, Dict[str, float]]
    per_shard: List[ShardRow] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every global invariant held."""
        return not self.violations


def build_sharded_report(
    summaries: Sequence[RunSummary],
    shards: int,
    router: str,
    rebalance: str,
    cost_limits: Sequence[float],
    violations: Sequence[Violation] = (),
) -> ShardedRunReport:
    """Fold per-shard summaries into one cross-shard report."""
    class_names: List[str] = []
    for summary in summaries:
        for name in summary.class_names:
            if name not in class_names:
                class_names.append(name)
    attainment: Dict[str, float] = {}
    completions: Dict[str, int] = {}
    percentiles: Dict[str, Dict[str, float]] = {}
    for name in class_names:
        pairs = [
            (
                summary.attainment.get(name, 0.0),
                float(summary.class_completions.get(name, 0)),
            )
            for summary in summaries
            if name in summary.attainment
        ]
        attainment[name] = weighted_attainment(pairs)
        completions[name] = sum(
            int(summary.class_completions.get(name, 0)) for summary in summaries
        )
        states = [
            summary.response_histograms[name]
            for summary in summaries
            if name in summary.response_histograms
        ]
        merged = merge_histogram_states(states)
        if merged is not None and merged.count > 0:
            percentiles[name] = {
                "p50": merged.percentile(50.0),
                "p95": merged.percentile(95.0),
                "p99": merged.percentile(99.0),
            }
    rows = [
        ShardRow(
            index=index,
            label=summary.label or "shard{:02d}".format(index),
            seed=summary.seed,
            cost_limit=float(cost_limits[index]) if index < len(cost_limits) else 0.0,
            total_completions=summary.total_completions,
            attainment=dict(summary.attainment),
        )
        for index, summary in enumerate(summaries)
    ]
    return ShardedRunReport(
        shards=shards,
        router=router,
        rebalance=rebalance,
        class_names=class_names,
        attainment=attainment,
        completions=completions,
        total_completions=sum(s.total_completions for s in summaries),
        percentiles=percentiles,
        per_shard=rows,
        violations=list(violations),
    )


def format_sharded_report(report: ShardedRunReport) -> str:
    """Human-readable cross-shard report (CLI output)."""
    lines = [
        "sharded run: {} shards, router={}, rebalance={}".format(
            report.shards, report.router, report.rebalance
        ),
        "total completions: {}".format(report.total_completions),
        "",
    ]
    header = "{:>10} |".format("class") + " {:>10} | {:>11} | {:>8} | {:>8} | {:>8} |".format(
        "attainment", "completions", "p50", "p95", "p99"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in report.class_names:
        tails = report.percentiles.get(name, {})
        lines.append(
            "{:>10} | {:>9.0%} | {:>11} | {:>8} | {:>8} | {:>8} |".format(
                name,
                report.attainment.get(name, 0.0),
                report.completions.get(name, 0),
                *(
                    "{:.2f}s".format(tails[key]) if key in tails else "-"
                    for key in ("p50", "p95", "p99")
                )
            )
        )
    lines.append("")
    shard_header = "{:>8} | {:>12} | {:>10} | {:>12} |".format(
        "shard", "seed", "limit", "completions"
    )
    lines.append(shard_header)
    lines.append("-" * len(shard_header))
    for row in report.per_shard:
        lines.append(
            "{:>8} | {:>12} | {:>10.0f} | {:>12} |".format(
                row.label, row.seed, row.cost_limit, row.total_completions
            )
        )
    if report.violations:
        lines.append("")
        lines.append("GLOBAL INVARIANT VIOLATIONS:")
        for violation in report.violations:
            lines.append("  " + violation.describe())
    else:
        lines.append("")
        lines.append("global invariants: ok")
    return "\n".join(lines)


def sharded_report_to_dict(report: ShardedRunReport) -> Dict:
    """JSON-ready representation (``repro run --shards N --output``)."""
    return {
        "shards": report.shards,
        "router": report.router,
        "rebalance": report.rebalance,
        "class_names": list(report.class_names),
        "attainment": dict(report.attainment),
        "completions": dict(report.completions),
        "total_completions": report.total_completions,
        "percentiles": {
            name: dict(tails) for name, tails in report.percentiles.items()
        },
        "per_shard": [
            {
                "index": row.index,
                "label": row.label,
                "seed": row.seed,
                "cost_limit": row.cost_limit,
                "total_completions": row.total_completions,
                "attainment": dict(row.attainment),
            }
            for row in report.per_shard
        ],
        "violations": [v.to_dict() for v in report.violations],
        "ok": report.ok,
    }


def save_sharded_report(
    report: ShardedRunReport, path: str, overwrite: bool = False
) -> None:
    """Write the report dict as JSON (overwrite-guarded like every export)."""
    from repro.errors import ExportError

    if not overwrite and os.path.exists(path):
        raise ExportError(
            "report export target {!r} already exists; pass overwrite=True "
            "to replace it".format(path)
        )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(sharded_report_to_dict(report), handle, indent=2, sort_keys=True)
        handle.write("\n")


def export_shard_telemetry(
    summaries: Sequence[RunSummary],
    path: str,
    overwrite: bool = False,
) -> List[str]:
    """Write each shard's telemetry to a per-shard suffixed path.

    Shard ``i``'s control-interval records go to :func:`shard_path`
    ``(path, i)`` through the overwrite-guarded
    :meth:`~repro.metrics.telemetry.TelemetryStore.save_jsonl`; shards
    without telemetry (baseline controllers) are skipped.  Returns the
    paths written.
    """
    written: List[str] = []
    for index, summary in enumerate(summaries):
        if not summary.telemetry_records:
            continue
        target = shard_path(path, index)
        summary.telemetry_store().save_jsonl(target, overwrite=overwrite)
        written.append(target)
    return written
