"""Global (cross-shard) invariants of the sharded control plane.

Each shard already runs the full per-deployment validation harness
(:mod:`repro.validation`) when the base spec asks for it; the checks here
cover what no single shard can see:

* **Routing conservation** — every client session the global schedule
  admits lands on exactly one shard: the per-(class, period) counts of
  the routed shard schedules sum to the global schedule's.
* **Cost-limit partition** — the per-shard system cost limits sum
  exactly to the configured global limit (nobody mints capacity).
* **Completion conservation** — the merged report accounts for every
  completed query: per-class completions across shard summaries sum to
  the report's totals.

Violations reuse :class:`repro.validation.Violation`, so strict-mode
handling, formatting, and JSON embedding are shared with the per-shard
harness.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.validation import Severity, Violation
from repro.workloads.schedule import PeriodSchedule

#: Absolute slack for the cost-partition sum (float accumulation drift;
#: the static splitter pins the last share, so static mode is exact).
COST_SUM_TOLERANCE = 1e-6


def check_routing_conservation(
    global_schedule: PeriodSchedule,
    shard_schedules: Sequence[PeriodSchedule],
    time: float = 0.0,
) -> List[Violation]:
    """Per-(class, period) shard counts must sum to the global schedule."""
    violations: List[Violation] = []
    shard_classes = set()
    for schedule in shard_schedules:
        shard_classes.update(schedule.counts)
    if shard_classes - set(global_schedule.counts):
        violations.append(
            Violation(
                name="shard_routing_conservation",
                message="shards schedule classes the global schedule lacks: {}".format(
                    sorted(shard_classes - set(global_schedule.counts))
                ),
                severity=Severity.CRITICAL,
                time=time,
            )
        )
    for class_name in sorted(global_schedule.counts):
        for period in range(global_schedule.num_periods):
            expected = global_schedule.counts[class_name][period]
            routed = sum(
                schedule.counts.get(class_name, (0,) * schedule.num_periods)[period]
                for schedule in shard_schedules
            )
            if routed != expected:
                violations.append(
                    Violation(
                        name="shard_routing_conservation",
                        message=(
                            "class {!r} period {}: {} clients routed, "
                            "schedule admits {}".format(
                                class_name, period, routed, expected
                            )
                        ),
                        severity=Severity.CRITICAL,
                        time=time,
                    )
                )
    return violations


def check_cost_partition(
    total_limit: float,
    shard_limits: Sequence[float],
    time: float = 0.0,
) -> List[Violation]:
    """Per-shard cost limits must sum (exactly) to the global limit."""
    violations: List[Violation] = []
    for index, limit in enumerate(shard_limits):
        if limit <= 0:
            violations.append(
                Violation(
                    name="shard_cost_partition",
                    message="shard {} has non-positive cost limit {:g}".format(
                        index, limit
                    ),
                    severity=Severity.CRITICAL,
                    time=time,
                )
            )
    drift = abs(sum(shard_limits) - total_limit)
    if drift > COST_SUM_TOLERANCE:
        violations.append(
            Violation(
                name="shard_cost_partition",
                message=(
                    "shard cost limits sum to {:g}, configured global limit "
                    "is {:g} (drift {:g})".format(
                        sum(shard_limits), total_limit, drift
                    )
                ),
                severity=Severity.CRITICAL,
                time=time,
            )
        )
    return violations


def check_completion_conservation(
    shard_completions: Sequence[Dict[str, int]],
    merged_completions: Dict[str, int],
    time: float = 0.0,
) -> List[Violation]:
    """The merged report must account for every shard's completions."""
    violations: List[Violation] = []
    summed: Dict[str, int] = {}
    for completions in shard_completions:
        for class_name, count in completions.items():
            summed[class_name] = summed.get(class_name, 0) + int(count)
    for class_name in sorted(set(summed) | set(merged_completions)):
        mine = summed.get(class_name, 0)
        reported = merged_completions.get(class_name, 0)
        if mine != reported:
            violations.append(
                Violation(
                    name="shard_completion_conservation",
                    message=(
                        "class {!r}: shards completed {} queries, merged "
                        "report says {}".format(class_name, mine, reported)
                    ),
                    severity=Severity.ERROR,
                    time=time,
                )
            )
    return violations
