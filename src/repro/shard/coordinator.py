"""The global coordinator: runs a shard fleet and merges the outcome.

Two execution modes, selected by the spec's ``rebalance`` field:

``"static"``
    The global cost limit is split once up front (proportional to routed
    cost-weighted demand, exact-sum); each shard is then a completely
    independent run, fanned out through
    :func:`~repro.experiments.parallel.run_requests` — ``jobs=N`` runs N
    shards in worker processes, and (as everywhere in this package)
    worker count never changes results.

``"interval"``
    Lockstep mode: every shard's deployment is built in-process and the
    fleet advances in control-interval slices.  Between slices the
    coordinator reads each shard's *live* demand (executing cost plus
    cost-weighted held queries) and re-splits the global limit across
    the shard solvers via
    :meth:`~repro.core.solver.PerformanceSolver.set_system_cost_limit`.
    Requires ``jobs=1`` (the slicing is inherently sequential) and the
    Query Scheduler controller (only it exposes a solver to retarget).

After either mode, the coordinator evaluates the *global* invariants
(:mod:`repro.shard.invariants`) — routing conservation, cost-limit
partition, completion conservation — and, when the base spec runs in
strict mode, raises :class:`~repro.errors.InvariantViolation` on any.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.live import TelemetryHub

from repro.config import default_config
from repro.errors import ConfigurationError, ExperimentError, InvariantViolation
from repro.experiments.parallel import (
    ProgressCallback,
    RunRequest,
    RunSummary,
    resolve_jobs,
    run_requests,
    summarize_result,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    build_bundle,
    make_controller,
    run_spec,
)
from repro.shard.invariants import (
    check_completion_conservation,
    check_cost_partition,
    check_routing_conservation,
)
from repro.shard.report import ShardedRunReport, build_sharded_report
from repro.shard.spec import (
    ShardedExperimentSpec,
    default_class_weights,
    split_cost_limit,
)
from repro.validation import Violation, attach_harness


@dataclass
class ShardedRunResult:
    """Everything one sharded run produced."""

    spec: ShardedExperimentSpec
    summaries: List[RunSummary]
    report: ShardedRunReport
    #: Global invariant violations (also embedded in the report).
    violations: List[Violation] = field(default_factory=list)
    #: The per-shard cost limits in force at the end of the run (equal to
    #: the static split in static mode; the last rebalance in interval mode).
    final_cost_limits: List[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every global invariant held."""
        return not self.violations


def _shard_label(index: int) -> str:
    return "shard{:02d}".format(index)


def _spec_cost_limit(spec: ExperimentSpec) -> float:
    config = spec.config if spec.config is not None else default_config()
    return config.system_cost_limit


def _fleet_start_data(
    spec: ShardedExperimentSpec, shard_specs: Sequence[ExperimentSpec]
) -> dict:
    """The fleet-level ``snapshot`` event payload (shard layout + goals)."""
    config = (spec.base.config or default_config()).validate()
    schedule = spec.resolved_schedule()
    classes = spec.resolved_classes()
    return {
        "controller": spec.base.controller,
        "backend": spec.base.backend,
        "seed": config.seed,
        "system_cost_limit": config.system_cost_limit,
        "control_interval": config.planner.control_interval,
        "periods": schedule.num_periods,
        "period_seconds": schedule.period_seconds,
        "horizon": schedule.horizon,
        "shards": spec.shards,
        "router": spec.router,
        "rebalance": spec.rebalance,
        "shard_cost_limits": [_spec_cost_limit(s) for s in shard_specs],
        "classes": [
            {
                "name": c.name,
                "kind": c.kind,
                "goal_metric": c.goal.metric,
                "goal_target": c.goal.target,
                "importance": c.importance,
            }
            for c in classes
        ],
    }


def run_sharded(
    spec: ShardedExperimentSpec,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
    hub: Optional["TelemetryHub"] = None,
) -> ShardedRunResult:
    """Run every shard, evaluate the global invariants, merge the report.

    ``jobs`` fans static-mode shards over worker processes exactly like
    every other batch runner (``1`` = serial, ``None`` = one per CPU);
    results are identical at any worker count.  A shard that crashes
    raises :class:`~repro.errors.ExperimentError` naming it.  In strict
    invariant mode a global violation raises
    :class:`~repro.errors.InvariantViolation` after the report (with the
    violations embedded) has been assembled.

    ``hub`` streams the fleet live (``repro run --shards N --dashboard``):
    a fleet-level ``snapshot`` up front, per-shard ``interval``/``run_end``
    events, every cost-limit split as a ``shard_rebalance`` event (the
    static split once at t=0; interval mode's re-split each slice), and a
    final fleet-level ``run_end`` carrying the merged report.  A hub
    requires ``jobs=1``: live events come from in-process plan listeners,
    which worker processes cannot deliver.
    """
    spec.validate()
    shard_specs = spec.shard_specs()
    if hub is not None and resolve_jobs(jobs) != 1:
        raise ConfigurationError(
            "a live telemetry hub requires jobs=1 (got jobs={!r}): events "
            "are published by in-process plan listeners, which worker "
            "processes cannot deliver".format(jobs)
        )
    if hub is not None:
        hub.publish(
            "snapshot", _fleet_start_data(spec, shard_specs), time=0.0
        )
    if spec.rebalance == "interval":
        if resolve_jobs(jobs) != 1:
            raise ConfigurationError(
                "rebalance='interval' runs the fleet in lockstep and "
                "requires jobs=1 (got jobs={!r}); use rebalance='static' "
                "for parallel fan-out".format(jobs)
            )
        summaries, final_limits = _run_lockstep(spec, shard_specs, hub=hub)
    elif hub is not None:
        # Serial in-process fan-out so each shard's plan listeners can
        # publish; identical results to the run_requests path (jobs=1
        # there is the same serial order, just without the hub).
        final_limits = [_spec_cost_limit(s) for s in shard_specs]
        hub.publish(
            "shard_rebalance",
            {"mode": "static", "limits": list(final_limits), "demands": None},
            time=0.0,
        )
        summaries = []
        for index, shard_spec in enumerate(shard_specs):
            try:
                result = run_spec(shard_spec, hub=hub, shard=index)
            except Exception as exc:
                raise ExperimentError(
                    "shard {} failed:\n{}".format(_shard_label(index), exc)
                ) from exc
            summaries.append(summarize_result(result, label=_shard_label(index)))
    else:
        requests = [
            RunRequest(
                controller=shard_spec.controller,
                label=_shard_label(index),
                spec=shard_spec,
            )
            for index, shard_spec in enumerate(shard_specs)
        ]
        outcomes = run_requests(requests, jobs=jobs, progress=progress)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            raise ExperimentError(
                "{} of {} shards failed; first failure ({}):\n{}".format(
                    len(failures),
                    len(outcomes),
                    failures[0].request.request_label,
                    failures[0].error,
                )
            )
        summaries = [outcome.summary for outcome in outcomes]
        final_limits = [_spec_cost_limit(s) for s in shard_specs]

    violations = _global_violations(spec, shard_specs, summaries, final_limits)
    report = build_sharded_report(
        summaries=summaries,
        shards=spec.shards,
        router=spec.router,
        rebalance=spec.rebalance,
        cost_limits=final_limits,
        violations=violations,
    )
    result = ShardedRunResult(
        spec=spec,
        summaries=summaries,
        report=report,
        violations=violations,
        final_cost_limits=list(final_limits),
    )
    if hub is not None:
        from repro.shard.report import sharded_report_to_dict

        hub.publish(
            "run_end",
            {
                "report": sharded_report_to_dict(report),
                "ok": result.ok,
                "final_cost_limits": list(final_limits),
            },
            time=spec.resolved_schedule().horizon,
        )
    if violations and spec.base.invariants == "strict":
        raise InvariantViolation(
            "global shard invariants violated:\n"
            + "\n".join(v.describe() for v in violations)
        )
    return result


def _global_violations(
    spec: ShardedExperimentSpec,
    shard_specs: Sequence[ExperimentSpec],
    summaries: Sequence[RunSummary],
    final_limits: Sequence[float],
) -> List[Violation]:
    """Evaluate every cross-shard invariant against the finished run."""
    global_schedule = spec.resolved_schedule()
    shard_schedules = [s.schedule for s in shard_specs if s.schedule is not None]
    config = (spec.base.config or default_config()).validate()
    end = global_schedule.horizon
    violations = check_routing_conservation(global_schedule, shard_schedules, time=end)
    violations += check_cost_partition(
        config.system_cost_limit, final_limits, time=end
    )
    merged = {}
    for summary in summaries:
        for name, count in summary.class_completions.items():
            merged[name] = merged.get(name, 0) + int(count)
    violations += check_completion_conservation(
        [summary.class_completions for summary in summaries], merged, time=end
    )
    return violations


def _run_lockstep(
    spec: ShardedExperimentSpec,
    shard_specs: Sequence[ExperimentSpec],
    hub: Optional["TelemetryHub"] = None,
) -> "tuple[List[RunSummary], List[float]]":
    """Advance every shard in control-interval slices, re-splitting limits.

    Mirrors :func:`~repro.experiments.runner.run_spec`'s assembly per
    shard (bundle, controller, plan listener, per-shard invariant
    harness), but owns the time loop: all shards run to the same slice
    boundary before the coordinator reads their live demand and
    retargets every shard solver with its new share.
    """
    base = spec.base
    if base.controller not in ("qs", "qs_detect"):
        raise ConfigurationError(
            "rebalance='interval' retargets each shard's solver and "
            "requires the Query Scheduler controller (qs/qs_detect), "
            "got {!r}".format(base.controller)
        )
    if base.backend != "sim":
        raise ConfigurationError(
            "rebalance='interval' advances shards in virtual-time lockstep "
            "and requires the simulation backend, got {!r}".format(base.backend)
        )
    if base.tracing or base.faults:
        raise ConfigurationError(
            "rebalance='interval' does not support tracing or scheduled "
            "faults; use rebalance='static'"
        )
    config = (base.config or default_config()).validate()
    classes = spec.resolved_classes()
    weights = default_class_weights(classes)
    mean_weight = sum(weights.values()) / len(weights) if weights else 1.0
    total_limit = config.system_cost_limit
    floor = spec.cost_floor()
    interval = config.planner.control_interval

    bundles = []
    controllers = []
    publishers = []
    try:
        for index, shard_spec in enumerate(shard_specs):
            bundle = build_bundle(
                config=shard_spec.config,
                schedule=shard_spec.schedule,
                classes=shard_spec.classes,
                backend=shard_spec.backend,
                backend_options=dict(shard_spec.backend_options),
            )
            controller = make_controller(
                bundle,
                shard_spec.controller,
                static_olap_limit=shard_spec.static_olap_limit,
            )
            controller.planner.add_plan_listener(bundle.collector.on_plan)
            attach_harness(bundle, mode=shard_spec.invariants)
            if hub is not None:
                from repro.obs.live.publish import RunPublisher

                publisher = RunPublisher(hub, bundle, controller, shard=index)
                publisher.attach()
                publishers.append(publisher)
            controller.start()
            bundle.manager.start()
            bundles.append(bundle)
            controllers.append(controller)

        horizon = max(bundle.schedule.horizon for bundle in bundles)
        if base.horizon is not None:
            horizon = min(horizon, base.horizon)
        limits = [_spec_cost_limit(s) for s in shard_specs]
        now = 0.0
        while now < horizon:
            now = min(now + interval, horizon)
            for bundle in bundles:
                bundle.run(horizon=now)
            if now >= horizon:
                break
            demands = [
                bundle.engine.executing_cost()
                + bundle.patroller.held_queries * mean_weight
                for bundle in bundles
            ]
            limits = split_cost_limit(total_limit, demands, floor)
            for controller, limit in zip(controllers, limits):
                controller.solver.set_system_cost_limit(limit)
            if hub is not None:
                hub.publish(
                    "shard_rebalance",
                    {
                        "mode": "interval",
                        "demands": list(demands),
                        "limits": list(limits),
                    },
                    time=now,
                )
    finally:
        for bundle in bundles:
            bundle.close()

    summaries = []
    for index, (shard_spec, bundle) in enumerate(zip(shard_specs, bundles)):
        result = ExperimentResult(
            controller_name=shard_spec.controller,
            config=bundle.config,
            classes=bundle.classes,
            schedule=bundle.schedule,
            collector=bundle.collector,
            bundle=bundle,
        )
        controller = controllers[index]
        telemetry = getattr(controller, "telemetry", None)
        if telemetry is not None:
            result.extras["telemetry"] = telemetry.store
        if index < len(publishers):
            publishers[index].publish_end(result)
        summaries.append(summarize_result(result, label=_shard_label(index)))
    return summaries, list(limits)
