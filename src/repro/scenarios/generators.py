"""Per-class client-count curve generators.

A scenario's ``clients:`` entry is either an explicit per-period list or a
generator mapping — ``{generator: <name>, ...params}`` — that expands to
one integer count per period.  Generators cover the workload shapes the
paper's single hand-reconstructed trace cannot: flat floors, step
alternation, diurnal sine traffic, flash-crowd spikes, and linear ramps.

All generators produce non-negative integers (values are rounded, then
clamped at zero) and are pure functions of their parameters and the
period count, so a scenario file fully determines its schedule.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping

from repro.errors import ScenarioError


def _param(params: Mapping, name: str, generator: str, default=None):
    """Fetch one generator parameter, raising a named error when required."""
    if name in params:
        return params[name]
    if default is not None:
        return default
    raise ScenarioError(
        "generator {!r} needs parameter {!r} (got {})".format(
            generator, name, sorted(params) or "none"
        )
    )


def _check_unknown(params: Mapping, allowed, generator: str) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ScenarioError(
            "generator {!r}: unknown parameters {}; allowed: {}".format(
                generator, unknown, sorted(allowed)
            )
        )


def _counts(values) -> List[int]:
    return [max(0, int(round(float(v)))) for v in values]


def constant(params: Mapping, num_periods: int) -> List[int]:
    """``value`` clients in every period."""
    _check_unknown(params, ("value",), "constant")
    value = _param(params, "value", "constant")
    return _counts([value] * num_periods)


def step(params: Mapping, num_periods: int) -> List[int]:
    """Alternate ``low`` and ``high`` levels, switching every ``every`` periods.

    Starts on ``low``; ``every`` defaults to 1 (strict alternation).
    """
    _check_unknown(params, ("low", "high", "every"), "step")
    low = _param(params, "low", "step")
    high = _param(params, "high", "step")
    every = int(_param(params, "every", "step", default=1))
    if every < 1:
        raise ScenarioError("generator 'step': every must be >= 1")
    levels = [low, high]
    return _counts(
        levels[(p // every) % 2] for p in range(num_periods)
    )


def diurnal(params: Mapping, num_periods: int) -> List[int]:
    """Sine wave: ``base + amplitude * sin(2*pi * (p + phase) / period)``.

    ``period`` is the cycle length in periods (default: the whole run is
    one cycle); ``phase`` shifts the wave in periods.  Models day/night
    traffic without step edges.
    """
    _check_unknown(params, ("base", "amplitude", "period", "phase"), "diurnal")
    base = float(_param(params, "base", "diurnal"))
    amplitude = float(_param(params, "amplitude", "diurnal"))
    cycle = float(_param(params, "period", "diurnal", default=num_periods))
    phase = float(params.get("phase", 0.0))
    if cycle <= 0:
        raise ScenarioError("generator 'diurnal': period must be positive")
    return _counts(
        base + amplitude * math.sin(2.0 * math.pi * (p + phase) / cycle)
        for p in range(num_periods)
    )


def flash_crowd(params: Mapping, num_periods: int) -> List[int]:
    """A ``base`` load that spikes to ``peak`` at period ``at``.

    The spike holds for ``duration`` periods (default 1), then decays
    linearly back to ``base`` over ``ramp_down`` periods (default 0 =
    instant recovery).  Models the thundering herd a workload manager
    exists to absorb.
    """
    _check_unknown(
        params, ("base", "peak", "at", "duration", "ramp_down"), "flash_crowd"
    )
    base = float(_param(params, "base", "flash_crowd"))
    peak = float(_param(params, "peak", "flash_crowd"))
    at = int(_param(params, "at", "flash_crowd"))
    duration = int(_param(params, "duration", "flash_crowd", default=1))
    ramp_down = int(params.get("ramp_down", 0))
    if duration < 1:
        raise ScenarioError("generator 'flash_crowd': duration must be >= 1")
    if ramp_down < 0:
        raise ScenarioError("generator 'flash_crowd': ramp_down must be >= 0")
    if not 0 <= at < num_periods:
        raise ScenarioError(
            "generator 'flash_crowd': spike period {} outside 0..{}".format(
                at, num_periods - 1
            )
        )
    values = []
    for p in range(num_periods):
        if at <= p < at + duration:
            values.append(peak)
        elif ramp_down and at + duration <= p < at + duration + ramp_down:
            frac = (p - (at + duration) + 1) / float(ramp_down + 1)
            values.append(peak + (base - peak) * frac)
        else:
            values.append(base)
    return _counts(values)


def ramp(params: Mapping, num_periods: int) -> List[int]:
    """Linear interpolation from ``start`` to ``end`` across the run."""
    _check_unknown(params, ("start", "end"), "ramp")
    start = float(_param(params, "start", "ramp"))
    end = float(_param(params, "end", "ramp"))
    if num_periods == 1:
        return _counts([end])
    span = num_periods - 1
    return _counts(
        start + (end - start) * p / span for p in range(num_periods)
    )


#: Generator registry: YAML ``generator:`` value -> expansion function.
#: Hyphenated spellings are accepted as aliases of the canonical names.
GENERATORS: Dict[str, Callable[[Mapping, int], List[int]]] = {
    "constant": constant,
    "step": step,
    "diurnal": diurnal,
    "flash_crowd": flash_crowd,
    "flash-crowd": flash_crowd,
    "ramp": ramp,
}


def resolve_generator(name: str, params: Mapping, num_periods: int) -> List[int]:
    """Expand one named generator to per-period client counts."""
    expand = GENERATORS.get(name)
    if expand is None:
        raise ScenarioError(
            "unknown client-curve generator {!r}; expected one of {}".format(
                name, sorted(set(GENERATORS) - {"flash-crowd"})
            )
        )
    if num_periods < 1:
        raise ScenarioError("a client curve needs at least one period")
    return expand(params, num_periods)
