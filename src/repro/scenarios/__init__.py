"""Declarative workload scenarios: YAML in, :class:`ExperimentSpec` out.

The scenario subsystem turns "open a new workload" into a YAML file: a
schema-validated, versioned document describing classes + SLOs, per-class
client-count curves (explicit lists or generators — constant, step,
diurnal sine, flash-crowd spike, ramp), controller/backend choice,
configuration overrides, invariant mode, and scheduled behavioral fault
injections.  ``repro run --scenario <name|path>`` runs one;
``repro scenarios`` lists and validates the shipped library.  See
docs/SCENARIOS.md for the format reference and catalog.
"""

from repro.scenarios.generators import GENERATORS, resolve_generator
from repro.scenarios.loader import (
    LIBRARY_DIR,
    find_scenario,
    library_names,
    library_paths,
    load_library_scenario,
    load_scenario,
    loads_scenario,
    save_scenario,
    scenario_to_yaml,
    validate_library,
)
from repro.scenarios.spec import (
    SCENARIO_FORMAT_VERSION,
    SMOKE_PERIOD_SECONDS,
    ClientCurve,
    ScenarioClass,
    ScenarioFault,
    ScenarioSpec,
    ShardPlan,
    scenario_from_mapping,
    scenario_to_mapping,
    to_experiment_spec,
    to_sharded_experiment_spec,
)

__all__ = [
    "GENERATORS",
    "LIBRARY_DIR",
    "SCENARIO_FORMAT_VERSION",
    "SMOKE_PERIOD_SECONDS",
    "ClientCurve",
    "ScenarioClass",
    "ScenarioFault",
    "ScenarioSpec",
    "ShardPlan",
    "find_scenario",
    "library_names",
    "library_paths",
    "load_library_scenario",
    "load_scenario",
    "loads_scenario",
    "resolve_generator",
    "save_scenario",
    "scenario_from_mapping",
    "scenario_to_mapping",
    "scenario_to_yaml",
    "to_experiment_spec",
    "to_sharded_experiment_spec",
    "validate_library",
]
