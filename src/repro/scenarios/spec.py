"""The scenario data model: schema, validation, and compilation.

A *scenario* is a declarative, versioned description of one complete
experiment — workload classes with SLOs, a per-class client-count curve
per period, controller and backend choice, invariant mode, configuration
overrides, and scheduled behavioral fault injections.  Scenarios load
from YAML (:mod:`repro.scenarios.loader`), validate structurally here,
and compile to the existing :class:`~repro.experiments.runner.ExperimentSpec`
via :func:`to_experiment_spec` — the run path itself is unchanged, so
scenario runs share every guarantee (determinism, golden data,
invariants) of :func:`~repro.experiments.runner.run_spec`.

The mapping layer is loss-free by construction:
``scenario_from_mapping(scenario_to_mapping(spec)) == spec`` for every
valid spec, which is what the library round-trip tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.config import SimulationConfig, WorkloadScaleConfig, default_config
from repro.core.service_class import ResponseTimeGoal, ServiceClass, VelocityGoal
from repro.errors import ConfigurationError, ScenarioError
from repro.faults import BEHAVIORAL_FAULTS, ScheduledFault
from repro.scenarios.generators import GENERATORS, resolve_generator
from repro.workloads.schedule import PeriodSchedule

#: The scenario format version this package reads and writes.
SCENARIO_FORMAT_VERSION = 1

#: Period length (seconds) scenarios are scaled down to by ``smoke=True``.
SMOKE_PERIOD_SECONDS = 8.0

_TOP_LEVEL_KEYS = (
    "scenario",
    "name",
    "description",
    "seed",
    "controller",
    "backend",
    "backend_options",
    "invariants",
    "horizon",
    "schedule",
    "control",
    "classes",
    "faults",
    "shards",
)

_SHARD_KEYS = ("count", "router", "rebalance", "seed_stride")

_CLASS_KEYS = ("name", "kind", "goal", "importance", "clients")

#: Allowed YAML keys per fault kind (beyond ``kind``/``at``/``at_period``).
_FAULT_PARAM_KEYS = {
    "cancel_storm": ("class", "fraction"),
    "arrival_burst": ("class", "count"),
    "release_latency_jitter": ("release_latency",),
    "drop_completions": ("component", "count", "class"),
}

#: Configuration paths a scenario may *not* override via ``control:`` —
#: they are owned by the scenario's own first-class fields.
_RESERVED_CONTROL_PATHS = ("seed", "scale.period_seconds", "scale.num_periods")


def _require(mapping: Mapping, key: str, context: str):
    if key not in mapping:
        raise ScenarioError("{}: missing required key {!r}".format(context, key))
    return mapping[key]


def _check_keys(mapping: Mapping, allowed, context: str) -> None:
    if not isinstance(mapping, Mapping):
        raise ScenarioError("{}: expected a mapping, got {!r}".format(
            context, type(mapping).__name__))
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ScenarioError(
            "{}: unknown keys {}; allowed: {}".format(
                context, unknown, sorted(allowed)
            )
        )


@dataclass(frozen=True)
class ClientCurve:
    """One class's per-period client counts: explicit or generated.

    Exactly one of ``counts`` (explicit per-period list) or ``generator``
    (+ ``params``) is set; :meth:`resolve` yields the concrete counts
    either way.  The generator form is kept symbolic so a scenario
    round-trips without losing the curve's intent.
    """

    counts: Optional[Tuple[int, ...]] = None
    generator: Optional[str] = None
    params: Mapping = field(default_factory=dict)

    def validate(self, context: str) -> None:
        if (self.counts is None) == (self.generator is None):
            raise ScenarioError(
                "{}: a curve is either an explicit count list or a "
                "generator mapping".format(context)
            )
        if self.counts is not None:
            if not self.counts:
                raise ScenarioError("{}: empty client count list".format(context))
            if any(c < 0 for c in self.counts):
                raise ScenarioError("{}: negative client count".format(context))
        elif self.generator not in GENERATORS:
            raise ScenarioError(
                "{}: unknown generator {!r}; expected one of {}".format(
                    context, self.generator,
                    sorted(set(GENERATORS) - {"flash-crowd"}),
                )
            )

    def resolve(self, num_periods: int) -> Tuple[int, ...]:
        """Concrete per-period counts for a schedule of ``num_periods``."""
        if self.counts is not None:
            if len(self.counts) != num_periods:
                raise ScenarioError(
                    "explicit curve has {} periods, schedule has {}".format(
                        len(self.counts), num_periods
                    )
                )
            return self.counts
        return tuple(resolve_generator(self.generator, self.params, num_periods))

    def to_value(self):
        """The YAML value form (list, or generator mapping)."""
        if self.counts is not None:
            return [int(c) for c in self.counts]
        value = {"generator": self.generator}
        value.update(self.params)
        return value

    @staticmethod
    def from_value(value, context: str) -> "ClientCurve":
        """Parse a YAML ``clients:`` value (list, int, or generator map)."""
        if isinstance(value, bool):
            raise ScenarioError("{}: clients cannot be a boolean".format(context))
        if isinstance(value, int):
            value = {"generator": "constant", "value": value}
        if isinstance(value, (list, tuple)):
            try:
                counts = tuple(int(c) for c in value)
            except (TypeError, ValueError):
                raise ScenarioError(
                    "{}: client counts must be integers".format(context)
                )
            curve = ClientCurve(counts=counts)
        elif isinstance(value, Mapping):
            if "generator" not in value:
                raise ScenarioError(
                    "{}: a clients mapping needs a 'generator' key".format(context)
                )
            params = {k: v for k, v in value.items() if k != "generator"}
            name = str(value["generator"]).replace("-", "_")
            curve = ClientCurve(generator=name, params=params)
        else:
            raise ScenarioError(
                "{}: clients must be a list, an integer, or a generator "
                "mapping".format(context)
            )
        curve.validate(context)
        return curve


@dataclass(frozen=True)
class ShardPlan:
    """The scenario's ``shards:`` block: how the deployment scales out.

    Compiles (with the rest of the scenario) to a
    :class:`~repro.shard.spec.ShardedExperimentSpec`; ``count: 1`` is the
    unsharded deployment and round-trips like any other block.
    """

    count: int
    router: str = "hash"
    rebalance: str = "static"
    seed_stride: int = 1000

    def validate(self, context: str = "shards") -> None:
        from repro.shard.router import ROUTER_NAMES
        from repro.shard.spec import REBALANCE_MODES

        if not isinstance(self.count, int) or isinstance(self.count, bool) or self.count < 1:
            raise ScenarioError(
                "{}: count must be a positive integer, got {!r}".format(
                    context, self.count
                )
            )
        if self.router not in ROUTER_NAMES:
            raise ScenarioError(
                "{}: unknown router {!r}; expected one of {}".format(
                    context, self.router, ROUTER_NAMES
                )
            )
        if self.rebalance not in REBALANCE_MODES:
            raise ScenarioError(
                "{}: unknown rebalance mode {!r}; expected one of {}".format(
                    context, self.rebalance, REBALANCE_MODES
                )
            )
        if not isinstance(self.seed_stride, int) or self.seed_stride < 1:
            raise ScenarioError(
                "{}: seed_stride must be a positive integer, got {!r}".format(
                    context, self.seed_stride
                )
            )

    def to_mapping(self) -> Dict[str, Any]:
        mapping: Dict[str, Any] = {"count": self.count}
        if self.router != "hash":
            mapping["router"] = self.router
        if self.rebalance != "static":
            mapping["rebalance"] = self.rebalance
        if self.seed_stride != 1000:
            mapping["seed_stride"] = self.seed_stride
        return mapping

    @staticmethod
    def from_value(value, context: str = "shards") -> "ShardPlan":
        """Parse the YAML ``shards:`` value (mapping, or a bare count)."""
        if isinstance(value, bool):
            raise ScenarioError("{}: cannot be a boolean".format(context))
        if isinstance(value, int):
            value = {"count": value}
        _check_keys(value, _SHARD_KEYS, context)
        plan = ShardPlan(
            count=int(_require(value, "count", context)),
            router=str(value.get("router", "hash")),
            rebalance=str(value.get("rebalance", "static")),
            seed_stride=int(value.get("seed_stride", 1000)),
        )
        plan.validate(context)
        return plan


@dataclass(frozen=True)
class ScenarioClass:
    """One workload class: SLO, importance, and its client curve."""

    name: str
    kind: str
    goal_metric: str
    goal_value: float
    importance: float
    clients: ClientCurve

    def service_class(self) -> ServiceClass:
        """The live :class:`ServiceClass` (validates goal/kind pairing)."""
        if self.goal_metric == "velocity":
            goal = VelocityGoal(self.goal_value)
        elif self.goal_metric == "response_time":
            goal = ResponseTimeGoal(self.goal_value)
        else:
            raise ScenarioError(
                "class {!r}: unknown goal metric {!r}; expected 'velocity' "
                "or 'response_time'".format(self.name, self.goal_metric)
            )
        try:
            return ServiceClass(self.name, self.kind, goal, self.importance)
        except ConfigurationError as exc:
            raise ScenarioError("class {!r}: {}".format(self.name, exc))

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "goal": {self.goal_metric: self.goal_value},
            "importance": self.importance,
            "clients": self.clients.to_value(),
        }

    @staticmethod
    def from_mapping(mapping: Mapping) -> "ScenarioClass":
        context = "class {!r}".format(mapping.get("name", "?"))
        _check_keys(mapping, _CLASS_KEYS, context)
        name = str(_require(mapping, "name", context))
        goal = _require(mapping, "goal", context)
        if not isinstance(goal, Mapping) or len(goal) != 1:
            raise ScenarioError(
                "{}: goal must be a one-entry mapping like "
                "{{velocity: 0.4}} or {{response_time: 0.25}}".format(context)
            )
        (metric, value), = goal.items()
        spec = ScenarioClass(
            name=name,
            kind=str(_require(mapping, "kind", context)),
            goal_metric=str(metric),
            goal_value=float(value),
            importance=float(_require(mapping, "importance", context)),
            clients=ClientCurve.from_value(
                _require(mapping, "clients", context), context
            ),
        )
        spec.service_class()  # validates kind/goal/importance eagerly
        return spec


@dataclass(frozen=True)
class ScenarioFault:
    """One scheduled behavioral fault.

    The injection instant is either ``at`` (seconds) or ``at_period``
    (fractional periods — scale-independent, so smoke-scaled runs inject
    at the same point of the schedule).  ``params`` hold the
    :class:`~repro.faults.FaultInjector` keyword arguments with the YAML
    spelling ``class:`` already translated to ``class_name``.
    """

    kind: str
    at: Optional[float] = None
    at_period: Optional[float] = None
    params: Mapping = field(default_factory=dict)

    def validate(self, context: str = "fault") -> None:
        if self.kind not in BEHAVIORAL_FAULTS:
            raise ScenarioError(
                "{}: unknown fault kind {!r}; expected one of {}".format(
                    context, self.kind, BEHAVIORAL_FAULTS
                )
            )
        if (self.at is None) == (self.at_period is None):
            raise ScenarioError(
                "{}: give exactly one of 'at' (seconds) or 'at_period' "
                "(periods)".format(context)
            )
        instant = self.at if self.at is not None else self.at_period
        if instant < 0:
            raise ScenarioError("{}: injection time must be >= 0".format(context))
        allowed = _FAULT_PARAM_KEYS[self.kind]
        unknown = sorted(
            set(self.params) - {"class_name" if k == "class" else k for k in allowed}
        )
        if unknown:
            raise ScenarioError(
                "{}: unknown parameters {} for fault {!r}; allowed: {}".format(
                    context, unknown, self.kind, sorted(allowed)
                )
            )

    def seconds(self, period_seconds: float, scale: float = 1.0) -> float:
        """Injection instant in seconds on a (possibly rescaled) schedule.

        ``period_seconds`` is the target schedule's period length;
        ``scale`` rescales an ``at``-in-seconds fault when the schedule
        was compressed (smoke runs), keeping its schedule position.
        """
        if self.at_period is not None:
            return self.at_period * period_seconds
        return self.at * scale

    def scheduled(self, period_seconds: float, scale: float = 1.0) -> ScheduledFault:
        """Compile to the runner's :class:`~repro.faults.ScheduledFault`."""
        return ScheduledFault(
            kind=self.kind,
            at=self.seconds(period_seconds, scale),
            params=dict(self.params),
        )

    def to_mapping(self) -> Dict[str, Any]:
        mapping: Dict[str, Any] = {"kind": self.kind}
        if self.at is not None:
            mapping["at"] = self.at
        else:
            mapping["at_period"] = self.at_period
        for key, value in self.params.items():
            mapping["class" if key == "class_name" else key] = value
        return mapping

    @staticmethod
    def from_mapping(mapping: Mapping, index: int) -> "ScenarioFault":
        context = "faults[{}]".format(index)
        if not isinstance(mapping, Mapping):
            raise ScenarioError("{}: expected a mapping".format(context))
        kind = str(_require(mapping, "kind", context))
        if kind not in BEHAVIORAL_FAULTS:
            raise ScenarioError(
                "{}: unknown fault kind {!r}; expected one of {}".format(
                    context, kind, BEHAVIORAL_FAULTS
                )
            )
        _check_keys(
            mapping,
            ("kind", "at", "at_period") + _FAULT_PARAM_KEYS[kind],
            context,
        )
        params = {}
        for key, value in mapping.items():
            if key in ("kind", "at", "at_period"):
                continue
            params["class_name" if key == "class" else key] = value
        fault = ScenarioFault(
            kind=kind,
            at=None if mapping.get("at") is None else float(mapping["at"]),
            at_period=(
                None if mapping.get("at_period") is None
                else float(mapping["at_period"])
            ),
            params=params,
        )
        fault.validate(context)
        return fault


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully parsed, structurally valid scenario document."""

    name: str
    period_seconds: float
    num_periods: int
    classes: Tuple[ScenarioClass, ...]
    version: int = SCENARIO_FORMAT_VERSION
    description: str = ""
    seed: int = 7
    controller: str = "qs"
    backend: str = "sim"
    backend_options: Mapping = field(default_factory=dict)
    invariants: str = "off"
    horizon: Optional[float] = None
    control: Mapping = field(default_factory=dict)
    faults: Tuple[ScenarioFault, ...] = ()
    shards: Optional[ShardPlan] = None

    @property
    def horizon_seconds(self) -> float:
        """Scheduled run length (before any explicit ``horizon`` cut)."""
        return self.period_seconds * self.num_periods

    def class_names(self) -> List[str]:
        return [c.name for c in self.classes]

    def resolved_counts(self) -> Dict[str, Tuple[int, ...]]:
        """Concrete per-class, per-period client counts."""
        return {c.name: c.clients.resolve(self.num_periods) for c in self.classes}

    def build_schedule(self, period_seconds: Optional[float] = None) -> PeriodSchedule:
        """The concrete :class:`PeriodSchedule` (optionally rescaled)."""
        return PeriodSchedule(
            period_seconds if period_seconds is not None else self.period_seconds,
            {name: list(counts) for name, counts in self.resolved_counts().items()},
        )

    def build_classes(self) -> List[ServiceClass]:
        """The live service classes, in document order."""
        return [c.service_class() for c in self.classes]

    def build_config(self) -> SimulationConfig:
        """Seeded configuration with ``control:`` overrides applied.

        The workload scale is owned by the ``schedule:`` section, so
        ``scale.period_seconds``/``scale.num_periods`` (and ``seed``) are
        rejected as override paths; everything else goes through the same
        dotted-path mechanism as ``repro sweep``.
        """
        from repro.experiments.sensitivity import set_config_field

        config = default_config(seed=self.seed)
        for path in sorted(self.control):
            if path in _RESERVED_CONTROL_PATHS:
                raise ScenarioError(
                    "control override {!r} is owned by the scenario's own "
                    "fields (seed / schedule)".format(path)
                )
            try:
                # "model" is sugar for the planner's performance-model
                # spec, so scenarios can say ``control: {model: learned}``.
                target = "planner.model" if path == "model" else path
                config = set_config_field(config, target, self.control[path])
            except ConfigurationError as exc:
                raise ScenarioError("control override {!r}: {}".format(path, exc))
        scale = WorkloadScaleConfig(
            period_seconds=self.period_seconds,
            num_periods=self.num_periods,
            think_time=config.scale.think_time,
        )
        return config.with_updates(scale=scale)

    def validate(self) -> "ScenarioSpec":
        """Deep validation: resolve every curve, class, config, and fault.

        Structural problems raise :class:`ScenarioError`; a spec that
        passes is guaranteed to compile via :func:`to_experiment_spec`.
        Returns ``self`` for chaining.
        """
        from repro.experiments.runner import CONTROLLER_NAMES
        from repro.runtime import BACKEND_NAMES
        from repro.validation import MODES

        if self.version != SCENARIO_FORMAT_VERSION:
            raise ScenarioError(
                "unsupported scenario format version {} (this build reads "
                "version {})".format(self.version, SCENARIO_FORMAT_VERSION)
            )
        if not self.name:
            raise ScenarioError("scenario needs a non-empty name")
        if self.period_seconds <= 0:
            raise ScenarioError("schedule.period_seconds must be positive")
        if self.num_periods < 1:
            raise ScenarioError("schedule.num_periods must be >= 1")
        if not self.classes:
            raise ScenarioError("scenario needs at least one class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ScenarioError("duplicate class names: {}".format(sorted(names)))
        if self.controller not in CONTROLLER_NAMES:
            raise ScenarioError(
                "unknown controller {!r}; expected one of {}".format(
                    self.controller, CONTROLLER_NAMES
                )
            )
        if self.backend not in BACKEND_NAMES:
            raise ScenarioError(
                "unknown backend {!r}; expected one of {}".format(
                    self.backend, BACKEND_NAMES
                )
            )
        if self.invariants not in MODES:
            raise ScenarioError(
                "unknown invariant mode {!r}; expected one of {}".format(
                    self.invariants, MODES
                )
            )
        if self.horizon is not None and self.horizon <= 0:
            raise ScenarioError("horizon must be positive when given")
        schedule = self.build_schedule()
        self.build_classes()
        self.build_config()
        if self.shards is not None:
            self.shards.validate()
        for index, fault in enumerate(self.faults):
            fault.validate("faults[{}]".format(index))
            when = fault.seconds(self.period_seconds)
            if not schedule.within_horizon(when):
                raise ScenarioError(
                    "faults[{}]: injection at {:.6g}s is outside the "
                    "schedule horizon ({:.6g}s)".format(
                        index, when, schedule.horizon
                    )
                )
            class_name = fault.params.get("class_name")
            if class_name is not None and class_name not in names:
                raise ScenarioError(
                    "faults[{}]: unknown class {!r}".format(index, class_name)
                )
        return self


def scenario_to_mapping(spec: ScenarioSpec) -> Dict[str, Any]:
    """The canonical mapping (YAML document) form of a scenario.

    Inverse of :func:`scenario_from_mapping`: feeding the result back
    reproduces an equal :class:`ScenarioSpec`.  Defaulted optional
    sections are omitted, so hand-written minimal files stay minimal.
    """
    mapping: Dict[str, Any] = {
        "scenario": spec.version,
        "name": spec.name,
    }
    if spec.description:
        mapping["description"] = spec.description
    mapping["seed"] = spec.seed
    mapping["controller"] = spec.controller
    if spec.backend != "sim":
        mapping["backend"] = spec.backend
    if spec.backend_options:
        mapping["backend_options"] = dict(spec.backend_options)
    mapping["invariants"] = spec.invariants
    if spec.horizon is not None:
        mapping["horizon"] = spec.horizon
    mapping["schedule"] = {
        "period_seconds": spec.period_seconds,
        "num_periods": spec.num_periods,
    }
    if spec.control:
        mapping["control"] = dict(spec.control)
    mapping["classes"] = [c.to_mapping() for c in spec.classes]
    if spec.faults:
        mapping["faults"] = [f.to_mapping() for f in spec.faults]
    if spec.shards is not None:
        mapping["shards"] = spec.shards.to_mapping()
    return mapping


def scenario_from_mapping(mapping: Mapping) -> ScenarioSpec:
    """Parse and validate one scenario document (a loaded YAML mapping)."""
    if not isinstance(mapping, Mapping):
        raise ScenarioError(
            "a scenario document must be a mapping, got {!r}".format(
                type(mapping).__name__
            )
        )
    _check_keys(mapping, _TOP_LEVEL_KEYS, "scenario")
    version = _require(mapping, "scenario", "scenario")
    if not isinstance(version, int) or isinstance(version, bool):
        raise ScenarioError(
            "'scenario' must be the integer format version, got {!r}".format(version)
        )
    schedule = _require(mapping, "schedule", "scenario")
    _check_keys(schedule, ("period_seconds", "num_periods"), "schedule")
    period_seconds = float(_require(schedule, "period_seconds", "schedule"))

    classes_raw = _require(mapping, "classes", "scenario")
    if not isinstance(classes_raw, (list, tuple)) or not classes_raw:
        raise ScenarioError("'classes' must be a non-empty list")
    classes = tuple(ScenarioClass.from_mapping(c) for c in classes_raw)

    num_periods = schedule.get("num_periods")
    if num_periods is None:
        explicit = {
            len(c.clients.counts)
            for c in classes
            if c.clients.counts is not None
        }
        if len(explicit) != 1:
            raise ScenarioError(
                "schedule.num_periods is required unless exactly one period "
                "count is implied by explicit client lists (found {})".format(
                    sorted(explicit) or "none"
                )
            )
        num_periods = explicit.pop()
    num_periods = int(num_periods)

    faults_raw = mapping.get("faults", [])
    if not isinstance(faults_raw, (list, tuple)):
        raise ScenarioError("'faults' must be a list")
    faults = tuple(
        ScenarioFault.from_mapping(f, i) for i, f in enumerate(faults_raw)
    )

    control = mapping.get("control", {})
    if not isinstance(control, Mapping):
        raise ScenarioError("'control' must be a mapping of dotted paths")
    backend_options = mapping.get("backend_options", {})
    if not isinstance(backend_options, Mapping):
        raise ScenarioError("'backend_options' must be a mapping")

    shards_raw = mapping.get("shards")
    shards = None if shards_raw is None else ShardPlan.from_value(shards_raw)

    horizon = mapping.get("horizon")
    spec = ScenarioSpec(
        name=str(_require(mapping, "name", "scenario")),
        period_seconds=period_seconds,
        num_periods=num_periods,
        classes=classes,
        version=version,
        description=str(mapping.get("description", "") or "").strip(),
        seed=int(mapping.get("seed", 7)),
        controller=str(mapping.get("controller", "qs")),
        backend=str(mapping.get("backend", "sim")),
        backend_options=dict(backend_options),
        invariants=str(mapping.get("invariants", "off")),
        horizon=None if horizon is None else float(horizon),
        control=dict(control),
        faults=faults,
        shards=shards,
    )
    return spec.validate()


def to_experiment_spec(
    spec: ScenarioSpec,
    smoke: bool = False,
    invariants: Optional[str] = None,
    seed: Optional[int] = None,
) -> "ExperimentSpec":  # noqa: F821
    """Compile a scenario to a runnable :class:`ExperimentSpec`.

    ``smoke=True`` compresses time — periods shrink to
    :data:`SMOKE_PERIOD_SECONDS` (never stretched) and the control
    interval, monitor sampling, fault instants, and any explicit horizon
    shrink proportionally — while the schedule *shape* (period count and
    client counts) is untouched, so a smoke run exercises the same
    workload dynamics in seconds of virtual time.

    ``invariants``/``seed`` override the scenario's own values (CLI
    flags).
    """
    from repro.experiments.runner import ExperimentSpec
    from repro.experiments.sensitivity import set_config_field

    spec = spec.validate()
    if seed is not None and int(seed) != spec.seed:
        from dataclasses import replace as _replace

        spec = _replace(spec, seed=int(seed))
    config = spec.build_config()

    period_seconds = spec.period_seconds
    scale = 1.0
    if smoke and period_seconds > SMOKE_PERIOD_SECONDS:
        scale = SMOKE_PERIOD_SECONDS / period_seconds
        period_seconds = SMOKE_PERIOD_SECONDS
    if scale != 1.0:
        config = config.with_updates(
            scale=WorkloadScaleConfig(
                period_seconds=period_seconds,
                num_periods=spec.num_periods,
                think_time=config.scale.think_time * scale,
            )
        )
    # Keep at least two control intervals per period so the planner reacts
    # within each period; shrink-only, and re-derive the monitor's sampling
    # cadence the way the CLI does when the interval tightens.
    interval = config.planner.control_interval
    effective = max(0.05, min(interval, period_seconds / 2.0))
    if effective != interval:
        config = set_config_field(config, "planner.control_interval", effective)
        monitor = config.monitor
        config = config.with_updates(
            monitor=type(monitor)(
                snapshot_interval=min(
                    monitor.snapshot_interval, max(0.05, effective / 2.0)
                ),
                velocity_window=monitor.velocity_window,
                response_time_window=min(
                    monitor.response_time_window, max(effective / 2.0, 10.0)
                ),
                max_measurement_age=monitor.max_measurement_age,
            )
        )
    return ExperimentSpec(
        controller=spec.controller,
        config=config,
        schedule=spec.build_schedule(period_seconds),
        classes=spec.build_classes(),
        invariants=invariants if invariants is not None else spec.invariants,
        backend=spec.backend,
        backend_options=dict(spec.backend_options),
        horizon=None if spec.horizon is None else spec.horizon * scale,
        faults=tuple(
            fault.scheduled(period_seconds, scale) for fault in spec.faults
        ),
    )


def to_sharded_experiment_spec(
    spec: ScenarioSpec,
    smoke: bool = False,
    invariants: Optional[str] = None,
    seed: Optional[int] = None,
    shards: Optional[int] = None,
    router: Optional[str] = None,
    rebalance: Optional[str] = None,
) -> "ShardedExperimentSpec":  # noqa: F821
    """Compile a scenario to a :class:`~repro.shard.spec.ShardedExperimentSpec`.

    The scenario's ``shards:`` block supplies the fleet layout;
    ``shards``/``router``/``rebalance`` override it (the CLI flags).  A
    scenario without the block compiles to a one-shard plan — which runs
    bit-identically to the unsharded path.
    """
    from repro.shard.spec import ShardedExperimentSpec

    base = to_experiment_spec(spec, smoke=smoke, invariants=invariants, seed=seed)
    plan = spec.shards or ShardPlan(count=1)
    return ShardedExperimentSpec(
        base=base,
        shards=plan.count if shards is None else int(shards),
        router=plan.router if router is None else str(router),
        rebalance=plan.rebalance if rebalance is None else str(rebalance),
        seed_stride=plan.seed_stride,
    ).validate()
