"""YAML IO and the named scenario library.

Scenarios live as YAML documents; this module loads/saves them and
resolves *names* against the shipped library under
``src/repro/scenarios/library/`` — ``repro run --scenario flash-crowd``
finds ``library/flash-crowd.yaml``, while anything that looks like a path
(or exists on disk) is loaded as a file.

PyYAML is the only third-party dependency of the scenario subsystem and
is imported lazily, so the rest of the package works without it; any
scenario entry point raises a clear :class:`ScenarioError` when it is
missing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import ScenarioError
from repro.scenarios.spec import (
    ScenarioSpec,
    scenario_from_mapping,
    scenario_to_mapping,
)

#: Directory holding the shipped named scenarios.
LIBRARY_DIR = Path(__file__).resolve().parent / "library"


def _yaml():
    try:
        import yaml
    except ImportError:  # pragma: no cover - environment without PyYAML
        raise ScenarioError(
            "the scenario subsystem needs PyYAML (the 'yaml' module) to "
            "read/write scenario files; install pyyaml"
        )
    return yaml


def loads_scenario(text: str) -> ScenarioSpec:
    """Parse and validate a scenario from YAML text."""
    document = _yaml().safe_load(text)
    return scenario_from_mapping(document)


def load_scenario(path) -> ScenarioSpec:
    """Load and validate one scenario file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError("cannot read scenario file {}: {}".format(path, exc))
    try:
        return loads_scenario(text)
    except ScenarioError as exc:
        raise ScenarioError("{}: {}".format(path, exc))


def scenario_to_yaml(spec: ScenarioSpec) -> str:
    """Serialize a scenario back to canonical YAML.

    Round-trip safe: ``loads_scenario(scenario_to_yaml(spec)) == spec``
    for every valid spec.
    """
    return _yaml().safe_dump(
        scenario_to_mapping(spec), sort_keys=False, default_flow_style=False
    )


def save_scenario(spec: ScenarioSpec, path) -> None:
    """Write a scenario as canonical YAML."""
    Path(path).write_text(scenario_to_yaml(spec))


def library_paths() -> Dict[str, Path]:
    """Shipped scenario names mapped to their YAML files (sorted)."""
    if not LIBRARY_DIR.is_dir():  # pragma: no cover - broken install
        return {}
    return {
        path.stem: path
        for path in sorted(LIBRARY_DIR.glob("*.yaml"))
    }


def library_names() -> List[str]:
    """Names accepted by ``repro run --scenario <name>``."""
    return sorted(library_paths())


def load_library_scenario(name: str) -> ScenarioSpec:
    """Load one shipped scenario by name."""
    path = library_paths().get(name)
    if path is None:
        raise ScenarioError(
            "no library scenario named {!r}; available: {}".format(
                name, ", ".join(library_names()) or "none"
            )
        )
    return load_scenario(path)


def find_scenario(name_or_path: str) -> ScenarioSpec:
    """Resolve a CLI argument: a library name, or a path to a YAML file."""
    if os.path.exists(name_or_path):
        return load_scenario(name_or_path)
    looks_like_path = os.sep in name_or_path or name_or_path.endswith(
        (".yaml", ".yml")
    )
    if not looks_like_path and name_or_path in library_paths():
        return load_library_scenario(name_or_path)
    raise ScenarioError(
        "no scenario {!r}: not a file, and not one of the library "
        "scenarios ({})".format(name_or_path, ", ".join(library_names()))
    )


def validate_library() -> List[Tuple[str, str]]:
    """Validate every shipped scenario; returns ``(name, error)`` failures.

    An empty list means the whole library loads, validates, and
    round-trips through serialization.
    """
    failures: List[Tuple[str, str]] = []
    for name, path in library_paths().items():
        try:
            spec = load_scenario(path)
            again = loads_scenario(scenario_to_yaml(spec))
            if again != spec:
                failures.append((name, "serialization round-trip mismatch"))
        except ScenarioError as exc:
            failures.append((name, str(exc)))
    return failures
