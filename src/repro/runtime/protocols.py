"""The execution-backend protocols.

The paper's Query Scheduler ran against a real DBMS (DB2 + Query
Patroller); our controller stack originally ran only against the
discrete-event simulator.  This module defines the *seam* between the two:
the complete surface the control stack (Monitor, Planner, Scheduler,
Dispatcher, WorkloadDetector, DirectScheduler, MPLController,
QueryPatroller, tracer, profiler, validation harness) is allowed to touch.

Three layers, narrow to wide:

* :class:`Clock` — ``now`` only.  Anything that merely *reads* time (the
  tracer, staleness bounds, measurement windows) depends on this.
* :class:`TimerService` — a clock plus ``schedule``/``schedule_at``
  returning cancellable :class:`TimerHandle`\\ s.  Anything that *reacts*
  to time (control loops, snapshot sampling, detection buckets, client
  think time) depends on this.
* :class:`ExecutionEngine` — the query-execution surface: submit,
  start/completion hooks, active-cost accounting, snapshot sampling and
  the admission-gate hook.

An :class:`ExecutionBackend` bundles one of each plus run/close lifecycle.
Two implementations ship: :class:`~repro.runtime.sim_backend.SimulationBackend`
(the DES engine, bit-identical to the pre-seam behaviour under fixed
seeds) and :class:`~repro.runtime.realtime.RealTimeBackend` (wall-clock
time, thread agents, real SQL against in-process SQLite).

All protocols are structural (:class:`typing.Protocol`): the existing
:class:`~repro.sim.engine.Simulator` and
:class:`~repro.dbms.engine.DatabaseEngine` satisfy them unchanged, which
is what makes the refactor behaviour-preserving.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.dbms.query import Query
from repro.dbms.snapshot import SnapshotMonitor

#: Default timer priority; ties at equal time break on scheduling order.
#: (Mirrors :data:`repro.sim.events.DEFAULT_PRIORITY` without importing the
#: sim layer — the runtime protocols must not depend on any one backend.)
DEFAULT_PRIORITY = 0

#: Listener signatures shared by every backend.
CompletionListener = Callable[[Query], None]
StartListener = Callable[[Query], None]


@runtime_checkable
class Clock(Protocol):
    """A monotonic time source in seconds.

    For the simulation backend this is virtual time starting at 0; for a
    real-time backend it is wall-clock seconds since the backend started.
    Components that only *read* time must depend on this, never on a
    concrete simulator.
    """

    @property
    def now(self) -> float:
        """Current time in seconds (monotonically non-decreasing)."""
        ...


@runtime_checkable
class TimerHandle(Protocol):
    """Cancellable reference to a scheduled timer."""

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        ...

    def cancel(self) -> bool:
        """Cancel if still pending; True iff this call cancelled it."""
        ...


@runtime_checkable
class TimerService(Protocol):
    """A clock that can also fire callbacks at future times.

    Timers with equal due time fire in ``(priority, scheduling order)``
    order — lower priority first — on every backend, so controller logic
    that relies on same-instant ordering is backend-portable.
    """

    @property
    def now(self) -> float:
        """Current time in seconds."""
        ...

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> TimerHandle:
        """Fire ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        ...

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> TimerHandle:
        """Fire ``callback`` at absolute time ``time``."""
        ...


@runtime_checkable
class AdmissionGate(Protocol):
    """In-engine admission control hook (see :mod:`repro.core.direct`)."""

    def admit(self, query: Query) -> bool:
        """True to admit now; False to take ownership and admit later."""
        ...


@runtime_checkable
class ExecutionEngine(Protocol):
    """The query-execution surface the control stack programs against.

    This is exactly the set of members the Monitor, Dispatcher, Patroller,
    MPL/Direct controllers, metrics collector, tracer and validation
    harness use — nothing more.  A backend author implements this plus a
    :class:`TimerService` and has the entire controller stack for free.
    """

    #: DB2-snapshot-style per-connection last-statement sampling substrate.
    snapshot_monitor: SnapshotMonitor

    @property
    def executing_queries(self) -> int:
        """Statements currently executing (holding an agent)."""
        ...

    @property
    def completed_queries(self) -> int:
        """Total statements completed since the backend started."""
        ...

    def executing_snapshot(self) -> List[Query]:
        """The currently executing statements (a copy)."""
        ...

    def executing_cost(self, class_name: Optional[str] = None) -> float:
        """Summed *estimated* cost of executing statements."""
        ...

    def execute(self, query: Query) -> None:
        """Submit a statement for execution (may wait for an agent)."""
        ...

    def admit_released(self, query: Query) -> None:
        """Admit a statement previously held by the admission gate."""
        ...

    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Subscribe to statement completions (subscription order)."""
        ...

    def add_start_listener(self, listener: StartListener) -> None:
        """Subscribe to execution starts (agent acquired)."""
        ...

    def set_admission_gate(self, gate: Optional[AdmissionGate]) -> None:
        """Install an in-engine admission gate (None to remove)."""
        ...


@runtime_checkable
class ExecutionBackend(Protocol):
    """One runnable execution substrate: clock + timers + engine.

    ``clock`` and ``timers`` may be the same object (the simulator is
    both); they are exposed separately so components can declare the
    narrowest dependency that suffices.
    """

    #: Short backend identifier (``"sim"``, ``"sqlite"``, ...).
    name: str

    @property
    def clock(self) -> Clock:
        """The backend's time source."""
        ...

    @property
    def timers(self) -> TimerService:
        """The backend's timer service."""
        ...

    @property
    def engine(self) -> ExecutionEngine:
        """The backend's execution engine."""
        ...

    def run_until(self, end_time: float) -> None:
        """Drive the backend until ``clock.now`` reaches ``end_time``.

        For the simulation backend this fires queued events and advances
        virtual time; for a real-time backend it blocks the calling thread
        while timers fire and queries execute, returning once the horizon
        has passed.
        """
        ...

    def close(self) -> None:
        """Release backend resources (threads, connections).  Idempotent."""
        ...
