"""Backend conformance checks.

Library code (driven by ``tests/runtime/test_conformance.py``, but usable
against any out-of-tree backend) that verifies an
:class:`~repro.runtime.protocols.ExecutionBackend` honours the contract
the controller stack depends on:

* **clock monotonicity** — ``now`` never goes backwards, timers never fire
  before their due time;
* **timer ordering** — due-time order, priority order within an instant,
  scheduling order within a priority;
* **timer cancellation** — cancelled timers never fire, ``cancel`` is
  exactly-once, consumed timers report inactive;
* **completion-hook balance** — every executed query starts once,
  completes once, and leaves the engine's executing set and counters
  balanced;
* **cost accounting** — ``executing_cost`` equals the sum of estimated
  costs over ``executing_snapshot`` at all times and drains to zero.

Each check takes a *fresh* backend and returns a list of human-readable
problems (empty = conformant).  :func:`run_conformance` runs the whole
suite through a backend factory, closing each instance.

Checks use sub-second horizons so they are cheap in wall-clock time on
real-time backends and in event count on the simulator.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.dbms.query import Query, QueryState, make_phases
from repro.errors import SimulationError
from repro.runtime.protocols import ExecutionBackend

#: The two admissible past-deadline contracts a timer service may declare.
PAST_DEADLINE_POLICIES = ("raise", "clamp")

#: Query-id namespace for conformance queries, far above workload ids.
_ID_BASE = 1_000_000

#: Per-check wall/virtual-second budget for draining submitted queries.
_DRAIN_LIMIT = 30.0


def _make_query(
    backend: ExecutionBackend,
    index: int,
    kind: str = "oltp",
    class_name: str = "class3",
    cpu: float = 0.004,
    io: float = 0.002,
) -> Query:
    """Build a small executable query priced by the backend's estimator.

    Estimated cost is set to the exact cost (no optimizer noise) so cost
    accounting is exactly checkable.
    """
    template = "q1" if kind == "olap" else "payment"
    cost = backend.engine.estimator.true_cost(cpu, io)
    return Query(
        query_id=_ID_BASE + index,
        class_name=class_name,
        client_id="conformance:{}".format(index),
        template=template,
        kind=kind,
        phases=make_phases(cpu, io, 1),
        true_cost=cost,
        estimated_cost=cost,
    )


def _drain(
    backend: ExecutionBackend,
    done: Callable[[], bool],
    step: float = 0.05,
    limit: float = _DRAIN_LIMIT,
    on_step: Callable[[], None] = lambda: None,
) -> bool:
    """Run the backend in ``step``-sized slices until ``done()`` or ``limit``."""
    waited = 0.0
    while not done() and waited < limit:
        backend.run_until(backend.clock.now + step)
        on_step()
        waited += step
    return done()


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------
def check_clock_monotonicity(backend: ExecutionBackend) -> List[str]:
    """``now`` is non-decreasing; timers fire at or after their due time."""
    problems: List[str] = []
    samples: List[Tuple[float, float]] = []  # (due_time, observed_now)
    start = backend.clock.now
    if backend.clock.now < start:
        problems.append("clock moved backwards between consecutive reads")
    due_times = [start + d for d in (0.01, 0.05, 0.12, 0.2)]
    for due in due_times:
        backend.timers.schedule_at(
            due,
            lambda due=due: samples.append((due, backend.clock.now)),
            label="conformance:tick",
        )
    backend.run_until(start + 0.3)
    if len(samples) != len(due_times):
        problems.append(
            "expected {} timer firings, saw {}".format(len(due_times), len(samples))
        )
    previous = start
    for due, observed in samples:
        if observed < due - 1e-9:
            problems.append(
                "timer due at {:.4f} fired early at {:.4f}".format(due, observed)
            )
        if observed < previous - 1e-9:
            problems.append(
                "clock went backwards: {:.4f} after {:.4f}".format(observed, previous)
            )
        previous = observed
    if backend.clock.now < start + 0.3 - 1e-9:
        problems.append("run_until returned before the requested horizon")
    return problems


def check_timer_ordering(backend: ExecutionBackend) -> List[str]:
    """Timers fire in (time, priority, scheduling-order) order."""
    problems: List[str] = []
    fired: List[str] = []
    start = backend.clock.now
    # Scheduled deliberately out of due-time order; b/c/d share a due time
    # and exercise priority (lower first) then scheduling order.
    backend.timers.schedule_at(start + 0.10, lambda: fired.append("c"), "c", priority=5)
    backend.timers.schedule_at(start + 0.15, lambda: fired.append("e"), "e")
    backend.timers.schedule_at(start + 0.10, lambda: fired.append("b"), "b", priority=-5)
    backend.timers.schedule_at(start + 0.05, lambda: fired.append("a"), "a")
    backend.timers.schedule_at(start + 0.10, lambda: fired.append("d"), "d", priority=5)
    backend.run_until(start + 0.25)
    expected = ["a", "b", "c", "d", "e"]
    if fired != expected:
        problems.append("firing order {} != expected {}".format(fired, expected))
    return problems


def check_timer_cancellation(backend: ExecutionBackend) -> List[str]:
    """Cancelled timers never fire; cancel() is exactly-once."""
    problems: List[str] = []
    fired: List[str] = []
    start = backend.clock.now
    early = backend.timers.schedule_at(
        start + 0.05, lambda: fired.append("early"), "early"
    )
    if not early.active:
        problems.append("freshly scheduled timer reports inactive")
    if not early.cancel():
        problems.append("first cancel() of a pending timer returned False")
    if early.cancel():
        problems.append("second cancel() of the same timer returned True")
    if early.active:
        problems.append("cancelled timer still reports active")

    victim = backend.timers.schedule_at(
        start + 0.15, lambda: fired.append("victim"), "victim"
    )
    # A timer cancelling a later one from inside a callback.
    backend.timers.schedule_at(start + 0.08, lambda: victim.cancel(), "canceller")
    survivor = backend.timers.schedule_at(
        start + 0.12, lambda: fired.append("survivor"), "survivor"
    )
    backend.run_until(start + 0.25)
    if fired != ["survivor"]:
        problems.append(
            "expected only 'survivor' to fire, saw {}".format(fired)
        )
    if survivor.active:
        problems.append("consumed timer still reports active")
    if survivor.cancel():
        problems.append("cancel() of an already-fired timer returned True")
    return problems


def check_completion_balance(backend: ExecutionBackend) -> List[str]:
    """Every submitted query starts once, completes once, and is retired."""
    problems: List[str] = []
    engine = backend.engine
    starts: Dict[int, int] = {}
    completions: Dict[int, int] = {}
    engine.add_start_listener(
        lambda q: starts.__setitem__(q.query_id, starts.get(q.query_id, 0) + 1)
    )
    engine.add_completion_listener(
        lambda q: completions.__setitem__(q.query_id, completions.get(q.query_id, 0) + 1)
    )
    queries = [
        _make_query(backend, i, kind="olap" if i % 3 == 0 else "oltp")
        for i in range(6)
    ]
    completed_before = engine.completed_queries
    for query in queries:
        # Normally the patroller stamps submission; conformance bypasses it.
        query.submit_time = backend.clock.now
        engine.execute(query)
    done = lambda: engine.completed_queries >= completed_before + len(queries)  # noqa: E731
    if not _drain(backend, done):
        problems.append(
            "only {}/{} queries completed within the drain budget".format(
                engine.completed_queries - completed_before, len(queries)
            )
        )
        return problems
    for query in queries:
        if starts.get(query.query_id, 0) != 1:
            problems.append(
                "query {} saw {} start events (want 1)".format(
                    query.query_id, starts.get(query.query_id, 0)
                )
            )
        if completions.get(query.query_id, 0) != 1:
            problems.append(
                "query {} saw {} completion events (want 1)".format(
                    query.query_id, completions.get(query.query_id, 0)
                )
            )
        if query.state is not QueryState.COMPLETED:
            problems.append(
                "query {} finished in state {}".format(query.query_id, query.state)
            )
        if (
            query.finish_time is None
            or query.start_time is None
            or query.release_time is None
            or query.finish_time < query.start_time
            or query.start_time < query.release_time
        ):
            problems.append(
                "query {} has inconsistent timestamps "
                "(release={}, start={}, finish={})".format(
                    query.query_id,
                    query.release_time,
                    query.start_time,
                    query.finish_time,
                )
            )
    if engine.executing_queries != 0:
        problems.append(
            "engine still reports {} executing after drain".format(
                engine.executing_queries
            )
        )
    if engine.executing_snapshot():
        problems.append("executing_snapshot() non-empty after drain")
    return problems


def check_cost_accounting(backend: ExecutionBackend) -> List[str]:
    """``executing_cost`` tracks the executing set exactly, then drains."""
    problems: List[str] = []
    engine = backend.engine
    queries = [
        _make_query(
            backend,
            100 + i,
            kind="olap" if i % 2 == 0 else "oltp",
            class_name="class1" if i % 2 == 0 else "class3",
            cpu=0.01 + 0.004 * i,
            io=0.006,
        )
        for i in range(5)
    ]
    completed_before = engine.completed_queries
    for query in queries:
        # Normally the patroller stamps submission; conformance bypasses it.
        query.submit_time = backend.clock.now
        engine.execute(query)

    def probe() -> None:
        snapshot = engine.executing_snapshot()
        expected_total = sum(q.estimated_cost for q in snapshot)
        if abs(engine.executing_cost() - expected_total) > 1e-6:
            problems.append(
                "executing_cost()={:.3f} but snapshot sums to {:.3f}".format(
                    engine.executing_cost(), expected_total
                )
            )
        if engine.executing_queries != len(snapshot):
            problems.append(
                "executing_queries={} but snapshot has {}".format(
                    engine.executing_queries, len(snapshot)
                )
            )
        for class_name in ("class1", "class3"):
            expected = sum(
                q.estimated_cost for q in snapshot if q.class_name == class_name
            )
            if abs(engine.executing_cost(class_name) - expected) > 1e-6:
                problems.append(
                    "executing_cost({!r})={:.3f} but snapshot sums to {:.3f}".format(
                        class_name, engine.executing_cost(class_name), expected
                    )
                )

    done = lambda: engine.completed_queries >= completed_before + len(queries)  # noqa: E731
    if not _drain(backend, done, on_step=probe):
        problems.append("cost-accounting queries did not drain in budget")
    probe()
    if abs(engine.executing_cost()) > 1e-9:
        problems.append(
            "executing_cost()={} after drain (want 0)".format(engine.executing_cost())
        )
    return problems


def check_past_deadline_contract(backend: ExecutionBackend) -> List[str]:
    """The timer service declares and honours a past-deadline policy.

    Negative *delays* are caller bugs on every backend and must raise
    :class:`~repro.errors.SimulationError`.  For an absolute time already
    in the past the two substrates legitimately differ, so each service
    declares its contract via ``past_deadline_policy``:

    * ``"raise"`` (the simulator) — a virtual clock only moves when the
      loop moves it, so scheduling before ``now`` is always a bug;
    * ``"clamp"`` (the real-time service) — on a moving wall clock "now"
      has always advanced past the caller's arithmetic, so the timer
      fires immediately (and is never observed firing before the time it
      was scheduled).
    """
    problems: List[str] = []
    timers = backend.timers
    policy = getattr(timers, "past_deadline_policy", None)
    if policy not in PAST_DEADLINE_POLICIES:
        problems.append(
            "timer service declares past_deadline_policy={!r}; expected "
            "one of {}".format(policy, PAST_DEADLINE_POLICIES)
        )
        return problems
    try:
        timers.schedule(-0.01, lambda: None, label="conformance:negative")
    except SimulationError:
        pass
    else:
        problems.append("schedule() accepted a negative delay without raising")
    # Advance a little so "the past" exists even on a fresh clock.
    backend.run_until(backend.clock.now + 0.05)
    past = backend.clock.now - 0.02
    fired: List[float] = []
    if policy == "raise":
        try:
            timers.schedule_at(past, lambda: fired.append(backend.clock.now),
                               label="conformance:past")
        except SimulationError:
            pass
        else:
            problems.append(
                "policy 'raise' but schedule_at() in the past did not raise"
            )
        if fired:
            problems.append("past-deadline timer fired under policy 'raise'")
    else:
        scheduled_at = backend.clock.now
        try:
            timers.schedule_at(past, lambda: fired.append(backend.clock.now),
                               label="conformance:past")
        except SimulationError:
            problems.append("policy 'clamp' but schedule_at() in the past raised")
            return problems
        if not _drain(backend, lambda: bool(fired), step=0.02, limit=2.0):
            problems.append(
                "policy 'clamp' but the past-deadline timer never fired"
            )
        elif fired[0] < scheduled_at - 1e-9:
            problems.append(
                "clamped timer observed now={:.4f} before its scheduling "
                "instant {:.4f}".format(fired[0], scheduled_at)
            )
    return problems


#: The suite, in execution order.  Each check gets a fresh backend.
CONFORMANCE_CHECKS: Dict[str, Callable[[ExecutionBackend], List[str]]] = {
    "clock_monotonicity": check_clock_monotonicity,
    "timer_ordering": check_timer_ordering,
    "timer_cancellation": check_timer_cancellation,
    "completion_balance": check_completion_balance,
    "cost_accounting": check_cost_accounting,
    "past_deadline_contract": check_past_deadline_contract,
}


def run_conformance(
    backend_factory: Callable[[], ExecutionBackend],
) -> Dict[str, List[str]]:
    """Run every conformance check against fresh backends from the factory.

    Returns ``{check_name: [problems]}`` — all lists empty for a
    conformant backend.
    """
    results: Dict[str, List[str]] = {}
    for name, check in CONFORMANCE_CHECKS.items():
        backend = backend_factory()
        try:
            results[name] = check(backend)
        finally:
            backend.close()
    return results
