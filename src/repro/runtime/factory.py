"""Backend construction by name.

The single place that maps the user-facing backend identifiers
(``repro run --backend {sim,sqlite}``, ``run_experiment(backend=...)``)
to concrete :class:`~repro.runtime.protocols.ExecutionBackend` instances.
"""

from __future__ import annotations

from typing import Any

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams


def make_backend(
    name: str,
    config: SimulationConfig,
    rng: RandomStreams,
    **options: Any,
):
    """Build the execution backend called ``name`` (``"sim"``/``"sqlite"``).

    Extra keyword ``options`` pass through to the backend constructor
    (e.g. ``workers=`` or ``statements_per_demand_second=`` for sqlite).
    """
    if name == "sim":
        from repro.runtime.sim_backend import SimulationBackend

        return SimulationBackend(config, rng, **options)
    if name == "sqlite":
        from repro.runtime.realtime import RealTimeBackend

        return RealTimeBackend(config, rng, **options)
    raise ConfigurationError(
        "unknown backend {!r} (expected 'sim' or 'sqlite')".format(name)
    )
