"""The simulation execution backend.

A thin adapter presenting the existing discrete-event substrate —
:class:`~repro.sim.engine.Simulator` as clock/timer service,
:class:`~repro.dbms.engine.DatabaseEngine` as execution engine — through
the :class:`~repro.runtime.protocols.ExecutionBackend` protocol.  It adds
**zero** behaviour: every event still flows through the same heap in the
same order, so fixed-seed experiments are bit-identical to the pre-seam
code (``tests/runtime/test_sim_regression.py`` pins this).
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimulationConfig
from repro.dbms.engine import DatabaseEngine
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class SimulationBackend:
    """Discrete-event backend over the existing simulator and engine."""

    name = "sim"

    def __init__(
        self,
        config: SimulationConfig,
        rng: RandomStreams,
        sim: Optional[Simulator] = None,
        engine: Optional[DatabaseEngine] = None,
    ) -> None:
        self.sim = sim if sim is not None else Simulator()
        self._engine = (
            engine if engine is not None else DatabaseEngine(self.sim, config, rng)
        )

    # ------------------------------------------------------------------
    # ExecutionBackend protocol
    # ------------------------------------------------------------------
    @property
    def clock(self) -> Simulator:
        """Virtual time — the simulator is its own clock."""
        return self.sim

    @property
    def timers(self) -> Simulator:
        """The simulator is also the timer service (event heap)."""
        return self.sim

    @property
    def engine(self) -> DatabaseEngine:
        """The simulated DB2-like execution engine."""
        return self._engine

    def run_until(self, end_time: float) -> None:
        """Fire events until virtual time reaches ``end_time``."""
        self.sim.run_until(end_time)

    def close(self) -> None:
        """Nothing to release — the simulator owns no OS resources."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SimulationBackend(now={:.3f})".format(self.sim.now)
