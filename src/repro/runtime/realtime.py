"""The real-time execution backend.

Where :class:`~repro.runtime.sim_backend.SimulationBackend` advances a
virtual clock over an event heap, this backend runs against *wall-clock*
time: timers fire when the monotonic clock actually reaches their due
time, and queries execute real SQL on worker threads (see
:mod:`repro.runtime.sqlite_engine`).

Concurrency model — deliberately the same shape as the simulator:

* The **control plane is single-threaded.**  The thread that calls
  :meth:`RealTimeBackend.run_until` becomes the timer loop; every
  controller callback (planner ticks, monitor snapshots, client
  submissions, completion listeners) fires on that thread, in
  ``(time, priority, sequence)`` order, exactly like simulator events.
  No controller component needs locks.
* **Only SQL leaves that thread.**  Worker threads execute statements and
  then post a zero-delay completion timer back into the loop, the same
  way an async DBMS driver posts completions onto an event loop.

:meth:`RealTimeTimerService.schedule` is thread-safe (workers post
completions with it); everything else is loop-thread-only.
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Callable, List, Optional, Union

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.runtime.clock import WallClock, as_clock
from repro.runtime.protocols import DEFAULT_PRIORITY, Clock

#: Longest uninterruptible sleep of the timer loop.  Bounds how stale the
#: loop's view of "now" can get if a notify is ever missed; small enough
#: that horizon overshoot stays well under human-visible latency.
_MAX_WAIT = 0.05


class _Timer:
    """One pending real-time timer (heap entry, tombstone-cancellable)."""

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        label: str,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "_Timer") -> bool:
        return self.sort_key() < other.sort_key()


class RealTimeTimerHandle:
    """Cancellable reference to a scheduled real-time timer."""

    __slots__ = ("_timer",)

    def __init__(self, timer: _Timer) -> None:
        self._timer = timer

    @property
    def time(self) -> float:
        """The wall time at which the timer is due."""
        return self._timer.time

    @property
    def label(self) -> str:
        """The diagnostic label attached at scheduling time."""
        return self._timer.label

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not self._timer.cancelled

    def cancel(self) -> bool:
        """Cancel if still pending; True iff this call cancelled it."""
        if self._timer.cancelled:
            return False
        self._timer.cancelled = True
        return True


class RealTimeTimerService:
    """Wall-clock timer service with simulator-compatible semantics.

    Same-instant ordering matches the simulator exactly — ``(time,
    priority, sequence)`` — so controller logic that relies on event
    ordering behaves identically on both backends.  Unlike the simulator,
    ``schedule_at`` with a time already in the past is *clamped* to fire
    immediately rather than raising: on a moving wall clock "now" has
    always advanced by the time the caller's arithmetic lands.
    """

    #: Declared past-deadline contract (see
    #: :mod:`repro.runtime.conformance`): ``schedule_at`` with a time in
    #: the past clamps to "fire immediately" instead of raising.
    past_deadline_policy = "clamp"

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock if clock is not None else WallClock()
        self._heap: List[_Timer] = []
        self._seq = 0
        self._fired = 0
        self._running = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current wall-clock seconds since the backend started."""
        return self.clock.now

    @property
    def pending_events(self) -> int:
        """Timers still on the heap (including tombstones)."""
        return len(self._heap)

    @property
    def fired_events(self) -> int:
        """Timers executed so far."""
        return self._fired

    # ------------------------------------------------------------------
    # Scheduling (thread-safe)
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> RealTimeTimerHandle:
        """Fire ``callback`` ``delay`` seconds from now.

        "Now" is read under the service lock, in the same critical section
        that enqueues the timer: concurrent shard workers posting
        completions must never compute a due time from a stale clock read
        taken before another scheduler advanced past it.
        """
        if delay < 0:
            raise SimulationError(
                "cannot schedule timer {!r} with negative delay {}".format(label, delay)
            )
        with self._cond:
            timer = self._push(self.clock.now + delay, callback, label, priority)
        return RealTimeTimerHandle(timer)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> RealTimeTimerHandle:
        """Fire ``callback`` once the wall clock reaches ``time``."""
        with self._cond:
            timer = self._push(time, callback, label, priority)
        return RealTimeTimerHandle(timer)

    def _push(
        self,
        time: float,
        callback: Callable[[], Any],
        label: str,
        priority: int,
    ) -> _Timer:
        """Enqueue one timer and wake the loop (caller holds the lock)."""
        timer = _Timer(time, priority, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, timer)
        self._cond.notify_all()
        return timer

    # ------------------------------------------------------------------
    # The loop (caller thread only)
    # ------------------------------------------------------------------
    def _next_due(self, end_time: float) -> Optional[_Timer]:
        """Pop the next timer due within the horizon, or None.

        Caller must hold the lock.  A timer is due only when the clock has
        reached it AND it falls inside the ``run_until`` horizon: if the
        loop thread wakes late (long callback, scheduler stall) the wall
        clock may already be past ``end_time``, and timers scheduled
        beyond the horizon must stay pending for the next ``run_until``
        call rather than firing early.
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time <= self.clock.now and head.time <= end_time:
                heapq.heappop(self._heap)
                # Mark consumed so late cancel() calls become no-ops.
                head.cancelled = True
                return head
            return None
        return None

    def run_until(self, end_time: float) -> None:
        """Fire timers as they come due until the clock passes ``end_time``.

        The calling thread becomes the timer loop.  Timers due at or
        before ``end_time`` are executed; later ones stay pending.
        Returns once ``now >= end_time`` with nothing due.
        """
        if self._running:
            raise SimulationError("run_until() called re-entrantly from a callback")
        self._running = True
        try:
            while True:
                with self._cond:
                    due = self._next_due(end_time)
                    if due is None:
                        now = self.clock.now
                        if now >= end_time:
                            return
                        horizon = end_time - now
                        if self._heap:
                            horizon = min(horizon, self._heap[0].time - now)
                        self._cond.wait(timeout=max(0.0, min(horizon, _MAX_WAIT)))
                        continue
                # Fire outside the lock: callbacks schedule new timers.
                self._fired += 1
                due.callback()
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RealTimeTimerService(now={:.3f}, pending={}, fired={})".format(
            self.now, len(self._heap), self._fired
        )


class RealTimeBackend:
    """Wall-clock backend: real timers, real SQL, thread-based agents."""

    name = "sqlite"

    def __init__(
        self,
        config: SimulationConfig,
        rng: "RandomStreams",  # noqa: F821 - annotation only
        clock: Optional[Union[Clock, Callable[[], float]]] = None,
        engine: Optional[object] = None,
        **engine_options: Any,
    ) -> None:
        self._clock = as_clock(clock)
        self._timers = RealTimeTimerService(self._clock)
        if engine is None:
            # Imported here so the protocols/clock layer stays importable
            # without the sqlite engine (and vice versa).
            from repro.runtime.sqlite_engine import SQLiteEngine

            engine = SQLiteEngine(self._timers, config, rng, **engine_options)
        self._engine = engine
        self._closed = False

    # ------------------------------------------------------------------
    # ExecutionBackend protocol
    # ------------------------------------------------------------------
    @property
    def clock(self) -> Clock:
        """Wall-clock seconds since backend construction."""
        return self._clock

    @property
    def timers(self) -> RealTimeTimerService:
        """The wall-clock timer service (the control-plane loop)."""
        return self._timers

    @property
    def engine(self):
        """The SQLite execution engine."""
        return self._engine

    def run_until(self, end_time: float) -> None:
        """Block the calling thread driving the loop until ``end_time``."""
        self._timers.run_until(end_time)

    def close(self) -> None:
        """Stop worker threads and release database resources."""
        if self._closed:
            return
        self._closed = True
        close = getattr(self._engine, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RealTimeBackend(now={:.3f}, closed={})".format(
            self._clock.now, self._closed
        )
