"""A real execution engine over in-process SQLite.

Implements the :class:`~repro.runtime.protocols.ExecutionEngine` protocol
by actually running SQL: each :class:`~repro.dbms.query.Query` coming out
of the existing ``workloads`` specs is mapped to generated TPC-H-like
(aggregate/join scans over ``lineitem``/``orders``) or TPC-C-like
(``new_order``/``payment``/... transactions over ``stock``/``district``)
statements, executed on worker threads against a temporary on-disk SQLite
database in WAL mode.

Mapping from spec demands to real work: a query's synthetic demand
(seconds-at-full-speed on the simulated server) is converted to a
*statement count* via ``statements_per_demand_second``, so relative query
weights survive the translation — an OLAP template with 100x the demand of
an OLTP transaction issues ~100x the statements — while absolute wall time
stays smoke-test short.  Timeron costs remain synthetic (the same
:class:`~repro.dbms.optimizer.CostEstimator` prices them), which is what
the controller's cost limits reason about, exactly as Query Patroller
trusted DB2's estimates.

Threading contract (see :mod:`repro.runtime.realtime`): every method of
this class runs on the control-plane timer thread *except*
``_execute_statements``, which runs on a worker and touches only its own
connection and the thread-safe timer service.  All bookkeeping mutation
(``_executing``, counters, listeners, the agent pool) stays on the timer
thread, so no locks guard it.
"""

from __future__ import annotations

import os
import shutil
import sqlite3
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import SimulationConfig
from repro.dbms.agent import AgentPool
from repro.dbms.optimizer import CostEstimator
from repro.dbms.query import Query, QueryState
from repro.dbms.snapshot import SnapshotMonitor
from repro.errors import SimulationError
from repro.runtime.protocols import (
    AdmissionGate,
    CompletionListener,
    StartListener,
    TimerService,
)
from repro.sim.rng import RandomStreams

#: One SQL statement with bound parameters.
Statement = Tuple[str, Tuple]

#: Fixed seed for synthetic table data — the *database contents* are always
#: identical across runs; only timing varies with the wall clock.
_DATA_SEED = 20070415

_SCHEMA = (
    # TPC-H-like warehouse (scans, aggregates, joins).
    """CREATE TABLE lineitem (
        l_orderkey INTEGER, l_partkey INTEGER, l_quantity REAL,
        l_extendedprice REAL, l_discount REAL, l_shipdate INTEGER)""",
    """CREATE TABLE orders (
        o_orderkey INTEGER PRIMARY KEY, o_custkey INTEGER,
        o_totalprice REAL, o_orderdate INTEGER)""",
    "CREATE INDEX idx_lineitem_orderkey ON lineitem (l_orderkey)",
    # TPC-C-like operational tables (point reads/updates, inserts).
    """CREATE TABLE stock (
        s_i_id INTEGER PRIMARY KEY, s_w_id INTEGER,
        s_quantity INTEGER, s_ytd REAL)""",
    "CREATE TABLE district (d_id INTEGER PRIMARY KEY, d_ytd REAL, d_next_o_id INTEGER)",
    """CREATE TABLE order_log (
        ol_id INTEGER PRIMARY KEY AUTOINCREMENT, ol_d_id INTEGER,
        ol_i_id INTEGER, ol_qty INTEGER, ol_ts REAL)""",
    "CREATE TABLE history (h_d_id INTEGER, h_amount REAL, h_ts REAL)",
)

#: TPC-H-like read statements, rotated per (query, statement index) so one
#: OLAP query interleaves several access patterns, like a real DSS plan.
_OLAP_STATEMENTS: Tuple[Statement, ...] = (
    (
        "SELECT l_partkey, SUM(l_extendedprice * (1 - l_discount)), AVG(l_quantity) "
        "FROM lineitem WHERE l_shipdate >= ? GROUP BY l_partkey",
        (30,),
    ),
    (
        "SELECT o.o_custkey, COUNT(*), SUM(l.l_extendedprice) "
        "FROM orders o JOIN lineitem l ON l.l_orderkey = o.o_orderkey "
        "WHERE o.o_orderdate >= ? GROUP BY o.o_custkey",
        (10,),
    ),
    (
        "SELECT l_shipdate / 30, COUNT(*), MIN(l_extendedprice), MAX(l_extendedprice) "
        "FROM lineitem GROUP BY l_shipdate / 30",
        (),
    ),
    (
        "SELECT COUNT(*) FROM lineitem l1 JOIN lineitem l2 "
        "ON l1.l_partkey = l2.l_partkey AND l1.l_orderkey < l2.l_orderkey "
        "WHERE l1.l_discount > ?",
        (0.05,),
    ),
)


class SQLiteEngine:
    """Executes the workload's statements for real, against SQLite.

    Parameters
    ----------
    sim:
        The backend's :class:`TimerService` (named ``sim`` for attribute
        parity with :class:`~repro.dbms.engine.DatabaseEngine`, which the
        patroller and controllers rely on).
    config:
        The shared simulation configuration; only ``agents`` and
        ``optimizer`` sections are consumed here.
    rng:
        Random streams for the cost estimator's noise.
    db_path:
        Existing path for the database file; default is a fresh temp
        directory removed on :meth:`close`.
    workers:
        SQL worker threads.  Defaults to ``min(max_agents, 16)`` — the
        agent pool bounds admitted concurrency, the executor bounds actual
        hardware parallelism, mirroring agents-vs-cores on a real server.
    statements_per_demand_second:
        How many SQL statements one demand-second maps to.
    max_statements_per_query:
        Upper bound on statements per query, so the excluded TPC-H
        monsters stay runnable in smoke tests.
    lineitem_rows / stock_rows / districts:
        Synthetic data scale.
    """

    def __init__(
        self,
        sim: TimerService,
        config: SimulationConfig,
        rng: RandomStreams,
        db_path: Optional[str] = None,
        workers: Optional[int] = None,
        statements_per_demand_second: float = 2.0,
        max_statements_per_query: int = 200,
        lineitem_rows: int = 2000,
        stock_rows: int = 500,
        districts: int = 10,
    ) -> None:
        config.validate()
        if statements_per_demand_second <= 0:
            raise SimulationError("statements_per_demand_second must be positive")
        self.sim = sim
        self.config = config
        self.rng = rng
        self.agents = AgentPool(config.agents)
        self.snapshot_monitor = SnapshotMonitor()
        self.estimator = CostEstimator(config.optimizer, rng)
        self.statements_per_demand_second = statements_per_demand_second
        self.max_statements_per_query = max_statements_per_query
        self._districts = districts
        self._stock_rows = stock_rows
        self._lineitem_rows = max(1, lineitem_rows)
        self._listeners: List[CompletionListener] = []
        self._start_listeners: List[StartListener] = []
        self._executing: Dict[int, Query] = {}
        self._completed = 0
        self._admission_gate: Optional[AdmissionGate] = None
        self._closed = False
        self._statements_issued = 0
        self.execution_errors = 0
        self.last_error: Optional[str] = None

        if db_path is None:
            self._tmpdir: Optional[str] = tempfile.mkdtemp(prefix="repro-sqlite-")
            self._db_path = os.path.join(self._tmpdir, "repro.db")
        else:
            self._tmpdir = None
            self._db_path = db_path
        self._local = threading.local()
        self._conn_lock = threading.Lock()
        self._all_connections: List[sqlite3.Connection] = []
        self._populate()
        if workers is None:
            workers = min(config.agents.max_agents, 16)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-sql"
        )

    # ------------------------------------------------------------------
    # Database setup
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self._db_path, check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=OFF")
        conn.execute("PRAGMA busy_timeout=5000")
        with self._conn_lock:
            self._all_connections.append(conn)
        return conn

    def _connection(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._connect()
            self._local.conn = conn
        return conn

    def _populate(self) -> None:
        import random

        gen = random.Random(_DATA_SEED)
        conn = self._connect()
        for ddl in _SCHEMA:
            conn.execute(ddl)
        orders = max(1, self._lineitem_rows // 10)
        conn.executemany(
            "INSERT INTO orders VALUES (?, ?, ?, ?)",
            [
                (okey, gen.randrange(1, 200), gen.uniform(100.0, 40000.0), gen.randrange(0, 365))
                for okey in range(1, orders + 1)
            ],
        )
        conn.executemany(
            "INSERT INTO lineitem VALUES (?, ?, ?, ?, ?, ?)",
            [
                (
                    gen.randrange(1, orders + 1),
                    gen.randrange(1, 200),
                    gen.uniform(1.0, 50.0),
                    gen.uniform(10.0, 2000.0),
                    gen.uniform(0.0, 0.1),
                    gen.randrange(0, 365),
                )
                for _ in range(self._lineitem_rows)
            ],
        )
        conn.executemany(
            "INSERT INTO stock VALUES (?, ?, ?, ?)",
            [
                (item, 1 + item % 4, gen.randrange(10, 100), 0.0)
                for item in range(1, self._stock_rows + 1)
            ],
        )
        conn.executemany(
            "INSERT INTO district VALUES (?, ?, ?)",
            [(d, 0.0, 1) for d in range(1, self._districts + 1)],
        )
        conn.commit()

    # ------------------------------------------------------------------
    # Introspection (ExecutionEngine protocol)
    # ------------------------------------------------------------------
    @property
    def executing_queries(self) -> int:
        """Statements currently holding an agent (SQL possibly in flight)."""
        return len(self._executing)

    @property
    def completed_queries(self) -> int:
        """Total statements completed since the engine started."""
        return self._completed

    @property
    def statements_issued(self) -> int:
        """Real SQL statements generated so far (diagnostics)."""
        return self._statements_issued

    def executing_snapshot(self) -> List[Query]:
        """The statements currently executing (a copy)."""
        return list(self._executing.values())

    def executing_cost(self, class_name: Optional[str] = None) -> float:
        """Summed *estimated* cost of executing statements."""
        total = 0.0
        for query in self._executing.values():
            if class_name is None or query.class_name == class_name:
                total += query.estimated_cost
        return total

    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Subscribe to statement completions (fired in subscription order)."""
        self._listeners.append(listener)

    def add_start_listener(self, listener: StartListener) -> None:
        """Subscribe to execution starts (agent acquired, SQL dispatched)."""
        self._start_listeners.append(listener)

    def set_admission_gate(self, gate: Optional[AdmissionGate]) -> None:
        """Install an in-engine admission gate (None to remove)."""
        self._admission_gate = gate

    # ------------------------------------------------------------------
    # Execution (timer thread)
    # ------------------------------------------------------------------
    def execute(self, query: Query) -> None:
        """Admit ``query`` for execution (possibly waiting for an agent)."""
        if query.state in (QueryState.EXECUTING, QueryState.COMPLETED):
            raise SimulationError("query {} executed twice".format(query.query_id))
        if self._admission_gate is not None and not self._admission_gate.admit(query):
            # The gate took ownership; it calls admit_released() later.
            return
        if query.release_time is None:
            query.release_time = self.sim.now
        self.agents.acquire(query, self._start)

    def admit_released(self, query: Query) -> None:
        """Admit a statement previously held by the admission gate."""
        if query.release_time is None:
            query.release_time = self.sim.now
        self.agents.acquire(query, self._start)

    def _start(self, query: Query) -> None:
        query.state = QueryState.EXECUTING
        query.start_time = self.sim.now
        self._executing[query.query_id] = query
        for listener in self._start_listeners:
            listener(query)
        statements = self._statements_for(query)
        self._statements_issued += len(statements)
        if self._closed:
            # Shutting down: complete administratively, keep accounting
            # balanced, run no SQL.
            self._finish(query)
            return
        self._pool.submit(self._execute_statements, query, statements)

    def _execute_statements(self, query: Query, statements: List[Statement]) -> None:
        """Worker thread: run the SQL, then post completion to the loop."""
        try:
            conn = self._connection()
            for sql, params in statements:
                conn.execute(sql, params).fetchall()
            conn.commit()
        except Exception as exc:  # completion must balance even on failure
            self.execution_errors += 1
            self.last_error = "{}: {}".format(type(exc).__name__, exc)
            try:
                self._connection().rollback()
            except Exception:
                pass
        self.sim.schedule(
            0.0,
            lambda: self._finish(query),
            label="sqlite:finish:q{}".format(query.query_id),
        )

    def _finish(self, query: Query) -> None:
        query.state = QueryState.COMPLETED
        query.finish_time = self.sim.now
        del self._executing[query.query_id]
        self._completed += 1
        self.snapshot_monitor.record_completion(query)
        self.agents.release()
        if query.on_complete is not None:
            query.on_complete(query)
        for listener in self._listeners:
            listener(query)

    # ------------------------------------------------------------------
    # Statement generation
    # ------------------------------------------------------------------
    def _statement_count(self, query: Query) -> int:
        demand = query.cpu_demand + query.io_demand
        count = int(round(demand * self.statements_per_demand_second))
        return max(1, min(self.max_statements_per_query, count))

    def _statements_for(self, query: Query) -> List[Statement]:
        """Map a workload-spec query to concrete SQL.

        OLAP queries become a rotation of aggregate/join scans whose
        *count* scales with the template's demand; OLTP queries become the
        matching TPC-C-like transaction (point update + insert or short
        select), parameterised deterministically from the query id.
        """
        count = self._statement_count(query)
        if query.kind == "olap":
            return [
                _OLAP_STATEMENTS[(query.query_id + i) % len(_OLAP_STATEMENTS)]
                for i in range(count)
            ]
        return self._oltp_statements(query, count)

    def _oltp_statements(self, query: Query, count: int) -> List[Statement]:
        qid = query.query_id
        d_id = 1 + qid % self._districts
        item = 1 + qid % self._stock_rows
        now = self.sim.now
        builders: Dict[str, Callable[[], List[Statement]]] = {
            "new_order": lambda: [
                (
                    "UPDATE stock SET s_quantity = s_quantity - ?, s_ytd = s_ytd + ? "
                    "WHERE s_i_id = ?",
                    (1, 9.99, item),
                ),
                (
                    "INSERT INTO order_log (ol_d_id, ol_i_id, ol_qty, ol_ts) "
                    "VALUES (?, ?, ?, ?)",
                    (d_id, item, 1 + qid % 9, now),
                ),
            ],
            "payment": lambda: [
                ("UPDATE district SET d_ytd = d_ytd + ? WHERE d_id = ?", (19.99, d_id)),
                ("INSERT INTO history VALUES (?, ?, ?)", (d_id, 19.99, now)),
            ],
            "order_status": lambda: [
                (
                    "SELECT ol_i_id, ol_qty FROM order_log WHERE ol_d_id = ? "
                    "ORDER BY ol_id DESC LIMIT 10",
                    (d_id,),
                ),
            ],
            "delivery": lambda: [
                (
                    "UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_id = ?",
                    (d_id,),
                ),
                (
                    "SELECT COUNT(*), MAX(ol_ts) FROM order_log WHERE ol_d_id = ?",
                    (d_id,),
                ),
            ],
            "stock_level": lambda: [
                (
                    "SELECT COUNT(*) FROM stock WHERE s_w_id = ? AND s_quantity < ?",
                    (1 + qid % 4, 30),
                ),
            ],
        }
        build = builders.get(
            query.template,
            lambda: [
                ("SELECT s_quantity, s_ytd FROM stock WHERE s_i_id = ?", (item,)),
            ],
        )
        statements = build()
        # Heavier-than-one-transaction OLTP demand repeats the transaction.
        repeats = max(1, count // max(1, len(statements)))
        return statements * repeats if repeats > 1 else statements

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain workers, close connections, remove the temp database."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        with self._conn_lock:
            connections = list(self._all_connections)
            self._all_connections.clear()
        for conn in connections:
            try:
                conn.close()
            except Exception:
                pass
        if self._tmpdir is not None:
            shutil.rmtree(self._tmpdir, ignore_errors=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SQLiteEngine(executing={}, completed={}, statements={})".format(
            len(self._executing), self._completed, self._statements_issued
        )
