"""Concrete clocks.

* :class:`WallClock` — monotonic wall-clock seconds, zeroed at creation.
  The time source of the real-time backend and the default source of the
  :class:`~repro.obs.profiling.IntervalProfiler` (controller overhead is
  always wall time, even under the simulation backend).
* :class:`CallableClock` — adapts a plain ``() -> float`` callable (a fake
  clock in tests, ``time.perf_counter`` itself) to the :class:`Clock`
  protocol.
* :func:`as_clock` — coercion helper accepting either form.
"""

from __future__ import annotations

import time
from typing import Callable, Union

from repro.runtime.protocols import Clock


class WallClock:
    """Monotonic wall-clock seconds since construction (starts at 0.0)."""

    __slots__ = ("_origin",)

    def __init__(self) -> None:
        self._origin = time.perf_counter()

    @property
    def now(self) -> float:
        """Seconds elapsed since this clock was created."""
        return time.perf_counter() - self._origin


class CallableClock:
    """Adapt a zero-argument callable returning seconds to :class:`Clock`."""

    __slots__ = ("_read",)

    def __init__(self, read: Callable[[], float]) -> None:
        self._read = read

    @property
    def now(self) -> float:
        """Whatever the wrapped callable currently returns."""
        return self._read()


def as_clock(source: Union[Clock, Callable[[], float], None]) -> Clock:
    """Coerce ``source`` to a :class:`Clock`.

    ``None`` yields a fresh :class:`WallClock`; an object with a ``now``
    attribute is used as-is; a bare callable is wrapped in
    :class:`CallableClock`.  This keeps older call sites that injected
    ``time.perf_counter``-style callables working unchanged.
    """
    if source is None:
        return WallClock()
    if hasattr(source, "now"):
        return source  # type: ignore[return-value]
    return CallableClock(source)
