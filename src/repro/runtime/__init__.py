"""Execution-backend abstraction.

``repro.runtime`` is the seam between the controller stack and whatever
actually executes queries.  The protocols (:class:`Clock`,
:class:`TimerService`, :class:`ExecutionEngine`, :class:`ExecutionBackend`)
and clock helpers import eagerly; the concrete backends
(:class:`SimulationBackend`, :class:`RealTimeBackend`,
:class:`SQLiteEngine`) and the conformance suite load lazily via PEP 562 —
they depend on ``repro.dbms.engine``/``repro.sim.engine``, which themselves
annotate against these protocols, and lazy loading keeps that cycle open.
"""

from repro.runtime.clock import CallableClock, WallClock, as_clock
from repro.runtime.protocols import (
    DEFAULT_PRIORITY,
    AdmissionGate,
    Clock,
    CompletionListener,
    ExecutionBackend,
    ExecutionEngine,
    StartListener,
    TimerHandle,
    TimerService,
)

#: Valid values for ``--backend`` / ``run_experiment(backend=...)``.
BACKEND_NAMES = ("sim", "sqlite")

_LAZY = {
    "SimulationBackend": ("repro.runtime.sim_backend", "SimulationBackend"),
    "RealTimeBackend": ("repro.runtime.realtime", "RealTimeBackend"),
    "RealTimeTimerService": ("repro.runtime.realtime", "RealTimeTimerService"),
    "SQLiteEngine": ("repro.runtime.sqlite_engine", "SQLiteEngine"),
    "CONFORMANCE_CHECKS": ("repro.runtime.conformance", "CONFORMANCE_CHECKS"),
    "run_conformance": ("repro.runtime.conformance", "run_conformance"),
    "make_backend": ("repro.runtime.factory", "make_backend"),
}

__all__ = [
    "AdmissionGate",
    "BACKEND_NAMES",
    "CallableClock",
    "Clock",
    "CompletionListener",
    "CONFORMANCE_CHECKS",
    "DEFAULT_PRIORITY",
    "ExecutionBackend",
    "ExecutionEngine",
    "make_backend",
    "RealTimeBackend",
    "RealTimeTimerService",
    "run_conformance",
    "SimulationBackend",
    "SQLiteEngine",
    "StartListener",
    "TimerHandle",
    "TimerService",
    "WallClock",
    "as_clock",
]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name)
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
