"""One entry point per paper figure.

Each ``figureN`` function regenerates the data behind the paper's Figure N
and returns it as plain Python structures; the benchmark harness formats and
prints them.  Figure 1 is the architecture diagram (nothing to measure);
Figures 4-7 all run the reconstructed Figure 3 workload under a different
controller.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimulationConfig, default_config
from repro.experiments.calibration import measure_oltp_response_time
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.workloads.schedule import paper_schedule

#: Digit-reconstructed Figure 2 client mixes: (OLTP clients, OLAP clients).
FIGURE2_PAIRS: Tuple[Tuple[int, int], ...] = ((30, 4), (30, 8), (30, 2), (50, 8))

#: Default OLAP cost-limit sweep for Figure 2 (timerons).
FIGURE2_LIMITS: Tuple[float, ...] = (5_000, 10_000, 15_000, 20_000, 25_000, 30_000)


def figure2(
    config: Optional[SimulationConfig] = None,
    olap_limits: Sequence[float] = FIGURE2_LIMITS,
    pairs: Sequence[Tuple[int, int]] = FIGURE2_PAIRS,
    **kwargs,
) -> Dict[Tuple[int, int], List[Tuple[float, Optional[float]]]]:
    """OLTP average response time vs total OLAP cost limit, per client mix."""
    results: Dict[Tuple[int, int], List[Tuple[float, Optional[float]]]] = {}
    for oltp_clients, olap_clients in pairs:
        series: List[Tuple[float, Optional[float]]] = []
        for limit in olap_limits:
            rt = measure_oltp_response_time(
                olap_limit=float(limit),
                oltp_clients=oltp_clients,
                olap_clients=olap_clients,
                config=config,
                **kwargs,
            )
            series.append((float(limit), rt))
        results[(oltp_clients, olap_clients)] = series
    return results


def figure3(period_seconds: float = 120.0) -> Dict[str, Tuple[int, ...]]:
    """The reconstructed 18-period client-count schedule."""
    schedule = paper_schedule(period_seconds)
    return dict(schedule.counts)


def _controlled_run(
    controller: str,
    config: Optional[SimulationConfig],
    **kwargs,
) -> ExperimentResult:
    return run_experiment(
        controller=controller,
        config=config or default_config(),
        **kwargs,
    )


def figure4(config: Optional[SimulationConfig] = None, **kwargs) -> ExperimentResult:
    """No class control on the paper workload (baseline)."""
    return _controlled_run("none", config, **kwargs)


def figure5(
    config: Optional[SimulationConfig] = None,
    priority_control: bool = True,
    **kwargs,
) -> ExperimentResult:
    """DB2 QP static control (priority on by default) on the paper workload."""
    controller = "qp" if priority_control else "qp_nopriority"
    return _controlled_run(controller, config, **kwargs)


def figure6(config: Optional[SimulationConfig] = None, **kwargs) -> ExperimentResult:
    """Query Scheduler control on the paper workload."""
    return _controlled_run("qs", config, **kwargs)


def figure7(
    result: Optional[ExperimentResult] = None,
    config: Optional[SimulationConfig] = None,
    **kwargs,
) -> Dict[str, List[Optional[float]]]:
    """Per-period mean class cost limits under Query Scheduler control.

    Figure 7 is the plan trace of the same run as Figure 6; pass that
    result to avoid re-running, or let this function run one.
    """
    if result is None:
        result = figure6(config, **kwargs)
    if result.controller_name != "qs":
        raise ValueError("figure7 needs a Query Scheduler run")
    return {
        service_class.name: result.collector.plan_period_means(service_class.name)
        for service_class in result.classes
    }
