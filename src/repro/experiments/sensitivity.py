"""Generic configuration sensitivity sweeps.

Every ablation bench follows the same pattern: vary one configuration
field, re-run the experiment, compare attainment.  :func:`sweep` makes that
a one-liner for *any* field of the (nested, frozen) configuration tree,
addressed by dotted path — e.g. ``"overload.knee_cost"``,
``"planner.control_interval"``, ``"optimizer.noise_sigma"`` or the
top-level ``"system_cost_limit"``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SimulationConfig, default_config
from repro.core.service_class import ServiceClass
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.parallel import ProgressCallback, RunRequest, run_requests
from repro.workloads.schedule import PeriodSchedule

#: One sweep point: the swept value and its per-class goal attainment.
SweepEntry = Tuple[object, Dict[str, float]]


def set_config_field(
    config: SimulationConfig, dotted_path: str, value
) -> SimulationConfig:
    """Return a validated copy of ``config`` with one field replaced.

    ``dotted_path`` addresses nested frozen dataclasses:
    ``"planner.control_interval"`` replaces
    ``config.planner.control_interval``; a bare name replaces a top-level
    field.  Unknown segments raise :class:`ConfigurationError`.
    """
    parts = dotted_path.split(".")
    for part in parts:
        if not part:
            raise ConfigurationError("empty segment in path {!r}".format(dotted_path))

    def rebuild(node, remaining):
        name = remaining[0]
        if not dataclasses.is_dataclass(node) or not any(
            f.name == name for f in dataclasses.fields(node)
        ):
            raise ConfigurationError(
                "unknown config field {!r} (in path {!r})".format(name, dotted_path)
            )
        if len(remaining) == 1:
            return dataclasses.replace(node, **{name: value})
        child = getattr(node, name)
        return dataclasses.replace(node, **{name: rebuild(child, remaining[1:])})

    updated = rebuild(config, parts)
    return updated.validate()


def get_config_field(config: SimulationConfig, dotted_path: str):
    """Read a (possibly nested) configuration field by dotted path."""
    node = config
    for part in dotted_path.split("."):
        if not dataclasses.is_dataclass(node) or not any(
            f.name == part for f in dataclasses.fields(node)
        ):
            raise ConfigurationError(
                "unknown config field {!r} (in path {!r})".format(part, dotted_path)
            )
        node = getattr(node, part)
    return node


def sweep(
    dotted_path: str,
    values: Sequence,
    controller: str = "qs",
    config: Optional[SimulationConfig] = None,
    schedule: Optional[PeriodSchedule] = None,
    classes: Optional[List[ServiceClass]] = None,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
    base_spec: Optional["ExperimentSpec"] = None,  # noqa: F821
) -> List[SweepEntry]:
    """Run the experiment once per value of the addressed field.

    Returns ordered ``(value, {class_name: attainment})`` entries, one per
    input value in input order.  Entries are positional, not keyed, so
    duplicate values each get their own entry and unhashable values (e.g.
    a list-typed field) are fine.  Every configuration is built and
    validated up front, so a bad value raises :class:`ConfigurationError`
    before any simulation runs; a run that crashes mid-sweep raises
    :class:`ExperimentError` naming the failing value (a silently missing
    point would skew the curve).

    ``jobs`` fans the points over worker processes (``1`` = serial,
    ``None`` = one per CPU) without changing the results.

    ``base_spec`` sweeps around a full
    :class:`~repro.experiments.runner.ExperimentSpec` instead of bare
    keywords — the scenario path (``repro sweep --scenario``): each point
    re-runs the spec (backend, invariant mode, scheduled faults and all)
    with only the addressed configuration field changed.  ``controller``,
    ``config``, ``schedule`` and ``classes`` are then taken from the spec
    and must not be passed separately.
    """
    values = list(values)
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    labels = _sweep_labels(dotted_path, values)
    if base_spec is not None:
        if any(arg is not None for arg in (config, schedule, classes)):
            raise ConfigurationError(
                "sweep: pass either base_spec or config/schedule/classes, not both"
            )
        base = (base_spec.config or default_config()).validate()
        requests = [
            RunRequest(
                controller=base_spec.controller,
                label=label,
                spec=base_spec.with_overrides(
                    config=set_config_field(base, dotted_path, value)
                ),
            )
            for value, label in zip(values, labels)
        ]
        outcomes = run_requests(requests, jobs=jobs, progress=progress)
        return _collect_entries(dotted_path, values, outcomes)
    base = (config or default_config()).validate()
    requests = [
        RunRequest(
            controller=controller,
            config=set_config_field(base, dotted_path, value),
            schedule=schedule,
            classes=tuple(classes) if classes is not None else None,
            label=label,
        )
        for value, label in zip(values, labels)
    ]
    outcomes = run_requests(requests, jobs=jobs, progress=progress)
    return _collect_entries(dotted_path, values, outcomes)


def _sweep_labels(dotted_path: str, values) -> List[str]:
    """One unique ``path=value`` label per sweep point.

    Repeated values (a legitimate sweep — e.g. probing run-to-run noise
    by sweeping ``seed`` over ``[7, 7, 7]``) get an ordinal suffix, so
    ``RunRequest.request_label`` values are unique within the batch and
    progress lines never conflate two points.
    """
    labels: List[str] = []
    seen: Dict[str, int] = {}
    for value in values:
        label = "{}={!r}".format(dotted_path, value)
        ordinal = seen.get(label, 0)
        seen[label] = ordinal + 1
        labels.append(label if ordinal == 0 else "{}#{}".format(label, ordinal + 1))
    return labels


def _collect_entries(dotted_path: str, values, outcomes) -> List[SweepEntry]:
    """Pair swept values with attainments; fail loudly on any bad point."""
    entries: List[SweepEntry] = []
    for value, outcome in zip(values, outcomes):
        if not outcome.ok:
            raise ExperimentError(
                "sweep of {!r} failed at value {!r}:\n{}".format(
                    dotted_path, value, outcome.error
                )
            )
        entries.append((value, outcome.summary.attainment))
    return entries


def format_sweep(
    dotted_path: str,
    results: Union[Sequence[SweepEntry], Dict],
    class_names: Sequence[str],
) -> str:
    """ASCII table of a :func:`sweep` outcome.

    Accepts the ordered ``(value, attainment)`` entries :func:`sweep`
    returns (or a legacy ``{value: attainment}`` mapping).
    """
    entries = results.items() if isinstance(results, dict) else results
    lines = []
    header = "{:>24} |".format(dotted_path) + "".join(
        " {:>8} |".format(name) for name in class_names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for value, attainment in entries:
        row = "{:>24} |".format(str(value))
        for name in class_names:
            share = attainment.get(name)
            row += " {:>7.0%} |".format(share) if share is not None else " {:>8} |".format("-")
        lines.append(row)
    return "\n".join(lines)
