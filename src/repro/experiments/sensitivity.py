"""Generic configuration sensitivity sweeps.

Every ablation bench follows the same pattern: vary one configuration
field, re-run the experiment, compare attainment.  :func:`sweep` makes that
a one-liner for *any* field of the (nested, frozen) configuration tree,
addressed by dotted path — e.g. ``"overload.knee_cost"``,
``"planner.control_interval"``, ``"optimizer.noise_sigma"`` or the
top-level ``"system_cost_limit"``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.config import SimulationConfig, default_config
from repro.core.service_class import ServiceClass
from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment
from repro.workloads.schedule import PeriodSchedule


def set_config_field(
    config: SimulationConfig, dotted_path: str, value
) -> SimulationConfig:
    """Return a validated copy of ``config`` with one field replaced.

    ``dotted_path`` addresses nested frozen dataclasses:
    ``"planner.control_interval"`` replaces
    ``config.planner.control_interval``; a bare name replaces a top-level
    field.  Unknown segments raise :class:`ConfigurationError`.
    """
    parts = dotted_path.split(".")
    for part in parts:
        if not part:
            raise ConfigurationError("empty segment in path {!r}".format(dotted_path))

    def rebuild(node, remaining):
        name = remaining[0]
        if not dataclasses.is_dataclass(node) or not any(
            f.name == name for f in dataclasses.fields(node)
        ):
            raise ConfigurationError(
                "unknown config field {!r} (in path {!r})".format(name, dotted_path)
            )
        if len(remaining) == 1:
            return dataclasses.replace(node, **{name: value})
        child = getattr(node, name)
        return dataclasses.replace(node, **{name: rebuild(child, remaining[1:])})

    updated = rebuild(config, parts)
    return updated.validate()


def get_config_field(config: SimulationConfig, dotted_path: str):
    """Read a (possibly nested) configuration field by dotted path."""
    node = config
    for part in dotted_path.split("."):
        if not dataclasses.is_dataclass(node) or not any(
            f.name == part for f in dataclasses.fields(node)
        ):
            raise ConfigurationError(
                "unknown config field {!r} (in path {!r})".format(part, dotted_path)
            )
        node = getattr(node, part)
    return node


def sweep(
    dotted_path: str,
    values: Sequence,
    controller: str = "qs",
    config: Optional[SimulationConfig] = None,
    schedule: Optional[PeriodSchedule] = None,
    classes: Optional[List[ServiceClass]] = None,
) -> Dict:
    """Run the experiment once per value of the addressed field.

    Returns ``{value: {class_name: attainment}}`` in input order.
    """
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    base = (config or default_config()).validate()
    results: Dict = {}
    for value in values:
        run_config = set_config_field(base, dotted_path, value)
        result = run_experiment(
            controller=controller,
            config=run_config,
            schedule=schedule,
            classes=classes,
        )
        results[value] = result.goal_attainment()
    return results


def format_sweep(
    dotted_path: str,
    results: Dict,
    class_names: Sequence[str],
) -> str:
    """ASCII table of a :func:`sweep` outcome."""
    lines = []
    header = "{:>24} |".format(dotted_path) + "".join(
        " {:>8} |".format(name) for name in class_names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for value, attainment in results.items():
        row = "{:>24} |".format(value)
        for name in class_names:
            share = attainment.get(name)
            row += " {:>7.0%} |".format(share) if share is not None else " {:>8} |".format("-")
        lines.append(row)
    return "\n".join(lines)
