"""Experiment harness: builds full simulations and reproduces the paper's
calibration sweep and Figures 2-7."""

from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    SimulationBundle,
    build_bundle,
    make_controller,
    run_experiment,
    run_spec,
)
from repro.experiments.calibration import (
    fit_oltp_slope,
    sweep_system_cost_limit,
)
from repro.experiments.figures import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.model_ablation import (
    DEFAULT_MODELS,
    DEFAULT_SCENARIOS,
    format_ablation_table,
    run_model_ablation,
)
from repro.experiments.parallel import (
    RunOutcome,
    RunRequest,
    RunSummary,
    execute_request,
    run_requests,
    summarize_result,
)
from repro.experiments.replication import (
    ReplicationSummary,
    RunFailure,
    compare,
    format_comparison,
    replicate,
)
from repro.experiments.reportgen import generate_report, write_report
from repro.experiments.sensitivity import (
    format_sweep,
    get_config_field,
    set_config_field,
    sweep,
)

__all__ = [
    "SimulationBundle",
    "ExperimentResult",
    "ExperimentSpec",
    "build_bundle",
    "make_controller",
    "run_experiment",
    "run_spec",
    "sweep_system_cost_limit",
    "fit_oltp_slope",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "replicate",
    "compare",
    "format_comparison",
    "ReplicationSummary",
    "RunFailure",
    "RunRequest",
    "RunSummary",
    "RunOutcome",
    "run_requests",
    "execute_request",
    "summarize_result",
    "sweep",
    "format_sweep",
    "set_config_field",
    "get_config_field",
    "generate_report",
    "write_report",
    "DEFAULT_MODELS",
    "DEFAULT_SCENARIOS",
    "format_ablation_table",
    "run_model_ablation",
]
