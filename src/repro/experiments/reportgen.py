"""Markdown report generation.

``generate_report`` re-runs the paper's headline experiments and renders a
self-contained Markdown report (per-figure tables, attainment summaries,
and the Figure 7 plan trace) — a fresh, machine-generated counterpart to
the hand-curated EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    SimulationConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.figures import figure4, figure5, figure6, figure7
from repro.experiments.runner import ExperimentResult


def quick_report_config() -> SimulationConfig:
    """A reduced configuration for fast report generation (~1 min)."""
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=120.0, num_periods=9),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=60.0),
        planner=PlannerConfig(control_interval=60.0),
    )


def _metric_label(service_class) -> str:
    return "velocity" if service_class.kind == "olap" else "avg rt (s)"


def _result_section(title: str, result: ExperimentResult) -> List[str]:
    lines = ["## {}".format(title), ""]
    lines.append("controller: `{}`".format(result.controller_name))
    lines.append("")
    header = "| period |" + "".join(
        " {} ({}) |".format(c.name, _metric_label(c)) for c in result.classes
    )
    rule = "|---|" + "---|" * len(result.classes)
    lines.append(header)
    lines.append(rule)
    series = {c.name: result.collector.performance_series(c) for c in result.classes}
    for period in range(result.schedule.num_periods):
        row = "| {} |".format(period + 1)
        for c in result.classes:
            value = series[c.name][period]
            if value is None:
                row += " - |"
            else:
                marker = "" if c.goal.satisfied(value) else " **miss**"
                row += " {:.3f}{} |".format(value, marker)
        lines.append(row)
    lines.append("")
    lines.append(
        "attainment: "
        + ", ".join(
            "{} {:.0%}".format(c.name, result.collector.goal_attainment(c))
            for c in result.classes
        )
    )
    lines.append("")
    return lines


def _plan_section(result: ExperimentResult) -> List[str]:
    lines = ["## Class cost limits under Query Scheduler (Figure 7)", ""]
    names = [c.name for c in result.classes]
    lines.append("| period |" + "".join(" {} |".format(n) for n in names))
    lines.append("|---|" + "---|" * len(names))
    means = {n: result.collector.plan_period_means(n) for n in names}
    for period in range(result.schedule.num_periods):
        row = "| {} |".format(period + 1)
        for n in names:
            value = means[n][period]
            row += " - |" if value is None else " {:.0f} |".format(value)
        lines.append(row)
    lines.append("")
    return lines


def _telemetry_section(result: ExperimentResult) -> List[str]:
    """Controller telemetry: model prediction error and loop accounting."""
    store = result.extras.get("telemetry")
    if store is None or len(store) == 0:
        return []
    lines = ["## Controller telemetry", ""]
    lines.append(
        "{} control intervals recorded ({} early-triggered).".format(
            len(store),
            sum(1 for record in store if record.trigger == "early"),
        )
    )
    lines.append("")
    summaries = store.prediction_error_summary()
    if summaries:
        lines.append("One-step prediction error (realized minus predicted):")
        lines.append("")
        lines.append("| class | intervals | mean abs error | mean error |")
        lines.append("|---|---|---|---|")
        for name in sorted(summaries):
            summary = summaries[name]
            lines.append(
                "| {} | {} | {:.4f} | {:+.4f} |".format(
                    name, summary.count, summary.mean_abs_error, summary.mean_error
                )
            )
        lines.append("")
    balance = store.dispatcher_balance()
    if balance:
        lines.append("Dispatcher accounting at end of run:")
        lines.append("")
        lines.append("| class | released | completed | cancelled | in flight |")
        lines.append("|---|---|---|---|---|")
        for name in sorted(balance):
            counts = balance[name]
            lines.append(
                "| {} | {} | {} | {} | {} |".format(
                    name,
                    counts["released"],
                    counts["completed"],
                    counts["cancelled"],
                    counts["in_flight"],
                )
            )
        lines.append("")
    overhead = store.overhead_summary()
    if overhead:
        lines.append(
            "Controller self-overhead (wall-clock seconds per control "
            "interval, `time.perf_counter` — not simulated time):"
        )
        lines.append("")
        lines.append("| section | mean (s) | max (s) | intervals |")
        lines.append("|---|---|---|---|")
        for key in sorted(overhead):
            stats = overhead[key]
            lines.append(
                "| {} | {:.6f} | {:.6f} | {} |".format(
                    key, stats["mean_s"], stats["max_s"], stats["count"]
                )
            )
        lines.append("")
    return lines


def _span_section(result: ExperimentResult) -> List[str]:
    """Per-class queue-wait/execute percentiles from the lifecycle trace."""
    tracer = result.extras.get("tracer")
    if tracer is None or not tracer.spans:
        return []
    from repro.obs import phase_breakdown
    from repro.obs.spans import PHASES

    lines = ["## Query lifecycle spans", ""]
    lines.append(
        "{} spans across {} traced queries (balanced: {}).".format(
            len(tracer.spans),
            len({s.query_id for s in tracer.spans}),
            tracer.balanced,
        )
    )
    lines.append("")
    lines.append("| class | phase | count | mean (s) | p50 (s) | p95 (s) | max (s) |")
    lines.append("|---|---|---|---|---|---|---|")
    breakdown = phase_breakdown(tracer.spans)
    for class_name in sorted(breakdown):
        for phase in PHASES:
            stats = breakdown[class_name].get(phase)
            if stats is None:
                continue
            lines.append(
                "| {} | {} | {} | {:.3f} | {:.3f} | {:.3f} | {:.3f} |".format(
                    class_name,
                    phase,
                    stats.count,
                    stats.mean,
                    stats.percentile(50.0),
                    stats.percentile(95.0),
                    stats.max,
                )
            )
    lines.append("")
    return lines


def generate_report(
    config: Optional[SimulationConfig] = None,
    controllers: Optional[Dict[str, str]] = None,
    tracing: bool = False,
) -> str:
    """Run the comparison experiments and return the Markdown report.

    With ``tracing`` the Query Scheduler run records per-query lifecycle
    spans and the report gains a per-class wait/execute percentile section.
    """
    config = (config or quick_report_config()).validate()
    lines: List[str] = [
        "# Generated experiment report",
        "",
        "Workload: {} periods x {:.0f}s; system cost limit {:.0f} timerons; "
        "seed {}.".format(
            config.scale.num_periods,
            config.scale.period_seconds,
            config.system_cost_limit,
            config.seed,
        ),
        "",
    ]
    qs_result = figure6(config, tracing=tracing)
    lines += _result_section("No class control (Figure 4)", figure4(config))
    lines += _result_section("DB2 QP priority control (Figure 5)", figure5(config))
    lines += _result_section("Query Scheduler (Figure 6)", qs_result)
    figure7(result=qs_result)  # validates the run is a QS run
    lines += _plan_section(qs_result)
    lines += _telemetry_section(qs_result)
    lines += _span_section(qs_result)
    return "\n".join(lines)


def write_report(
    path: str,
    config: Optional[SimulationConfig] = None,
    tracing: bool = False,
) -> str:
    """Generate and write the report; returns the Markdown text."""
    text = generate_report(config=config, tracing=tracing)
    with open(path, "w") as handle:
        handle.write(text)
    return text
