"""Multi-seed replication of experiments.

The paper reports a single 24-hour run.  A reproduction should quantify
run-to-run variance: :func:`replicate` re-runs an experiment across seeds
and aggregates per-class attainment and goal-metric means, and
:func:`compare` does that for several controllers on the *same* seeds so
differences are paired, not confounded by workload randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SimulationConfig, default_config
from repro.core.service_class import ServiceClass
from repro.experiments.runner import run_experiment
from repro.sim.stats import WelfordAccumulator
from repro.workloads.schedule import PeriodSchedule


@dataclass
class ClassReplicationStats:
    """Across-seed aggregates for one service class."""

    class_name: str
    attainment: WelfordAccumulator = field(default_factory=WelfordAccumulator)
    metric_mean: WelfordAccumulator = field(default_factory=WelfordAccumulator)

    def summary(self) -> Dict[str, float]:
        """Plain-dict summary (JSON-friendly)."""
        return {
            "attainment_mean": self.attainment.mean,
            "attainment_std": self.attainment.stddev,
            "metric_mean": self.metric_mean.mean,
            "metric_std": self.metric_mean.stddev,
            "runs": self.attainment.count,
        }


@dataclass
class ReplicationSummary:
    """Aggregated outcome of one controller across seeds."""

    controller: str
    seeds: List[int]
    per_class: Dict[str, ClassReplicationStats]

    def attainment_mean(self, class_name: str) -> float:
        """Mean across-seed attainment of a class."""
        return self.per_class[class_name].attainment.mean

    def attainment_std(self, class_name: str) -> float:
        """Across-seed standard deviation of a class's attainment."""
        return self.per_class[class_name].attainment.stddev


def replicate(
    controller: str,
    seeds: Sequence[int],
    config: Optional[SimulationConfig] = None,
    schedule: Optional[PeriodSchedule] = None,
    classes: Optional[List[ServiceClass]] = None,
) -> ReplicationSummary:
    """Run one controller across several seeds and aggregate."""
    if not seeds:
        raise ValueError("replicate needs at least one seed")
    base = (config or default_config()).validate()
    per_class: Dict[str, ClassReplicationStats] = {}
    for seed in seeds:
        result = run_experiment(
            controller=controller,
            config=base.with_updates(seed=int(seed)),
            schedule=schedule,
            classes=classes,
        )
        for service_class in result.classes:
            stats = per_class.setdefault(
                service_class.name, ClassReplicationStats(service_class.name)
            )
            stats.attainment.add(result.collector.goal_attainment(service_class))
            values = [
                v
                for v in result.collector.performance_series(service_class)
                if v is not None
            ]
            if values:
                stats.metric_mean.add(sum(values) / len(values))
    return ReplicationSummary(
        controller=controller, seeds=list(seeds), per_class=per_class
    )


def compare(
    controllers: Sequence[str],
    seeds: Sequence[int],
    config: Optional[SimulationConfig] = None,
    schedule: Optional[PeriodSchedule] = None,
    classes: Optional[List[ServiceClass]] = None,
) -> Dict[str, ReplicationSummary]:
    """Replicate several controllers over the same seeds (paired design)."""
    return {
        controller: replicate(
            controller, seeds, config=config, schedule=schedule, classes=classes
        )
        for controller in controllers
    }


def format_comparison(
    summaries: Dict[str, ReplicationSummary],
    class_names: Sequence[str],
) -> str:
    """ASCII table of mean +/- std attainment per controller and class."""
    lines = []
    header = "{:>12} |".format("controller") + "".join(
        " {:>16} |".format(name) for name in class_names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for controller, summary in summaries.items():
        row = "{:>12} |".format(controller)
        for name in class_names:
            stats = summary.per_class.get(name)
            if stats is None or stats.attainment.count == 0:
                row += " {:>16} |".format("-")
            else:
                row += " {:>7.0%} +/-{:>4.0%} |".format(
                    stats.attainment.mean, stats.attainment.stddev
                )
        lines.append(row)
    return "\n".join(lines)
