"""Multi-seed replication of experiments.

The paper reports a single 24-hour run.  A reproduction should quantify
run-to-run variance: :func:`replicate` re-runs an experiment across seeds
and aggregates per-class attainment and goal-metric means, and
:func:`compare` does that for several controllers on the *same* seeds so
differences are paired, not confounded by workload randomness.

Both fan their runs out through :mod:`repro.experiments.parallel`: pass
``jobs=4`` (or ``jobs=None`` for one worker per CPU) and the seeds run in
worker processes instead of back-to-back.  Results are aggregated in seed
order regardless of completion order, so the summaries are bitwise
identical at any worker count.  A run that crashes becomes a
:class:`RunFailure` entry on its summary instead of killing the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SimulationConfig, default_config
from repro.core.service_class import ServiceClass
from repro.experiments.parallel import (
    ProgressCallback,
    RunOutcome,
    RunRequest,
    run_requests,
)
from repro.sim.stats import WelfordAccumulator
from repro.workloads.schedule import PeriodSchedule


@dataclass
class ClassReplicationStats:
    """Across-seed aggregates for one service class.

    Two attainment views coexist: ``attainment`` (the per-run Welford
    accumulator — unweighted across-run mean and spread, the right lens
    for run-to-run *variance*) and :attr:`weighted_attainment` (pooled by
    completed-query counts — the right lens for the *overall* SLO report,
    where a run that completed 40 queries must not weigh the same as one
    that completed 40,000).
    """

    class_name: str
    attainment: WelfordAccumulator = field(default_factory=WelfordAccumulator)
    metric_mean: WelfordAccumulator = field(default_factory=WelfordAccumulator)
    #: Total completed queries of this class across all runs.
    completions: int = 0
    #: Sum of per-run ``attainment * completions`` (weighted numerator).
    _weighted_sum: float = 0.0

    def add_run(self, attainment: float, completions: int) -> None:
        """Fold one run's attainment with its completed-query weight."""
        self.attainment.add(attainment)
        self.completions += int(completions)
        self._weighted_sum += attainment * completions

    @property
    def weighted_attainment(self) -> float:
        """Attainment pooled by completed-query counts (not mean-of-means)."""
        if self.completions <= 0:
            return self.attainment.mean
        return self._weighted_sum / self.completions

    def summary(self) -> Dict[str, float]:
        """Plain-dict summary (JSON-friendly)."""
        return {
            "attainment_mean": self.attainment.mean,
            "attainment_std": self.attainment.stddev,
            "attainment_weighted": self.weighted_attainment,
            "completions": self.completions,
            "metric_mean": self.metric_mean.mean,
            "metric_std": self.metric_mean.stddev,
            "runs": self.attainment.count,
        }


@dataclass(frozen=True)
class RunFailure:
    """One seed's failure within a replication batch."""

    seed: int
    error: str


@dataclass
class ReplicationSummary:
    """Aggregated outcome of one controller across seeds."""

    controller: str
    seeds: List[int]
    per_class: Dict[str, ClassReplicationStats]
    #: Seeds whose run crashed (isolated; they contribute no aggregates).
    errors: List[RunFailure] = field(default_factory=list)

    def attainment_mean(self, class_name: str) -> float:
        """Across-seed attainment of a class, weighted by completions.

        Pooled by completed-query counts: a seed that completed ten times
        the queries contributes ten times the weight (averaging per-run
        means skews the SLO report whenever runs complete unequal
        volumes).  The unweighted across-run mean remains available as
        ``per_class[name].attainment.mean``.
        """
        return self.per_class[class_name].weighted_attainment

    def attainment_std(self, class_name: str) -> float:
        """Across-seed standard deviation of a class's attainment."""
        return self.per_class[class_name].attainment.stddev


def _seed_requests(
    controller: str,
    seeds: Sequence[int],
    base: SimulationConfig,
    schedule: Optional[PeriodSchedule],
    classes: Optional[List[ServiceClass]],
) -> List[RunRequest]:
    """One request per seed, in seed order."""
    return [
        RunRequest(
            controller=controller,
            config=base.with_updates(seed=int(seed)),
            schedule=schedule,
            classes=tuple(classes) if classes is not None else None,
            label="{}:seed={}".format(controller, int(seed)),
        )
        for seed in seeds
    ]


def _aggregate(
    controller: str,
    seeds: Sequence[int],
    outcomes: Sequence[RunOutcome],
) -> ReplicationSummary:
    """Fold outcomes (already in seed order) into a summary."""
    per_class: Dict[str, ClassReplicationStats] = {}
    errors: List[RunFailure] = []
    for seed, outcome in zip(seeds, outcomes):
        if not outcome.ok:
            errors.append(RunFailure(seed=int(seed), error=outcome.error))
            continue
        summary = outcome.summary
        for name in summary.class_names:
            stats = per_class.setdefault(name, ClassReplicationStats(name))
            stats.add_run(
                summary.attainment[name],
                summary.class_completions.get(name, 0),
            )
            mean = summary.metric_mean(name)
            if mean is not None:
                stats.metric_mean.add(mean)
    return ReplicationSummary(
        controller=controller,
        seeds=list(seeds),
        per_class=per_class,
        errors=errors,
    )


def replicate(
    controller: str,
    seeds: Sequence[int],
    config: Optional[SimulationConfig] = None,
    schedule: Optional[PeriodSchedule] = None,
    classes: Optional[List[ServiceClass]] = None,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
) -> ReplicationSummary:
    """Run one controller across several seeds and aggregate.

    ``jobs`` fans the seeds over worker processes (``1`` = serial,
    ``None`` = one per CPU); aggregates are identical at any worker
    count.  A crashed seed lands in ``summary.errors`` instead of
    raising.
    """
    if not seeds:
        raise ValueError("replicate needs at least one seed")
    base = (config or default_config()).validate()
    requests = _seed_requests(controller, seeds, base, schedule, classes)
    outcomes = run_requests(requests, jobs=jobs, progress=progress)
    return _aggregate(controller, seeds, outcomes)


def compare(
    controllers: Sequence[str],
    seeds: Sequence[int],
    config: Optional[SimulationConfig] = None,
    schedule: Optional[PeriodSchedule] = None,
    classes: Optional[List[ServiceClass]] = None,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
) -> Dict[str, ReplicationSummary]:
    """Replicate several controllers over the same seeds (paired design).

    The full controller x seed cross-product is fanned out in one batch,
    so ``jobs=4`` keeps four workers busy across the whole comparison
    rather than parallelizing one controller at a time.
    """
    if not seeds:
        raise ValueError("compare needs at least one seed")
    seeds = list(seeds)
    base = (config or default_config()).validate()
    requests: List[RunRequest] = []
    for controller in controllers:
        requests.extend(_seed_requests(controller, seeds, base, schedule, classes))
    outcomes = run_requests(requests, jobs=jobs, progress=progress)
    summaries: Dict[str, ReplicationSummary] = {}
    for position, controller in enumerate(controllers):
        chunk = outcomes[position * len(seeds):(position + 1) * len(seeds)]
        summaries[controller] = _aggregate(controller, seeds, chunk)
    return summaries


def format_comparison(
    summaries: Dict[str, ReplicationSummary],
    class_names: Sequence[str],
) -> str:
    """ASCII table of attainment per controller and class.

    The headline number is the completion-weighted attainment; the ``+/-``
    spread is the unweighted across-run standard deviation.
    """
    lines = []
    header = "{:>12} |".format("controller") + "".join(
        " {:>16} |".format(name) for name in class_names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for controller, summary in summaries.items():
        row = "{:>12} |".format(controller)
        for name in class_names:
            stats = summary.per_class.get(name)
            if stats is None or stats.attainment.count == 0:
                row += " {:>16} |".format("-")
            else:
                row += " {:>7.0%} +/-{:>4.0%} |".format(
                    stats.weighted_attainment, stats.attainment.stddev
                )
        lines.append(row)
        for failure in summary.errors:
            lines.append(
                "{:>12} |  seed {} FAILED: {}".format(
                    "", failure.seed, failure.error.strip().splitlines()[-1]
                )
            )
    return "\n".join(lines)
