"""Calibration experiments.

Two pre-experiments from the papers' methodology:

* :func:`sweep_system_cost_limit` — Section 2: the system cost limit "is
  determined experimentally by plotting the curve of the throughput versus
  the system cost limit to ensure the system running in a healthy state or
  under-saturated".
* :func:`fit_oltp_slope` — Section 3.2 / Figure 2: measure OLTP average
  response time against the total OLAP cost limit and fit the linear slope
  ``s`` used to seed the OLTP performance model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SimulationConfig, default_config
from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
)
from repro.experiments.runner import run_experiment
from repro.workloads.schedule import constant_schedule


def _steady_state_mean(
    series: Sequence[Optional[float]], warmup_periods: int
) -> Optional[float]:
    values = [v for v in series[warmup_periods:] if v is not None]
    if not values:
        return None
    return sum(values) / len(values)


def _calibration_classes() -> List[ServiceClass]:
    return [
        ServiceClass("olap", "olap", VelocityGoal(0.5), importance=1),
        ServiceClass("class3", "oltp", ResponseTimeGoal(0.25), importance=3),
    ]


def sweep_system_cost_limit(
    limits: Sequence[float],
    config: Optional[SimulationConfig] = None,
    olap_clients: int = 32,
    period_seconds: float = 120.0,
    num_periods: int = 3,
    warmup_periods: int = 1,
) -> List[Tuple[float, float]]:
    """OLAP throughput (queries/s) against the system cost limit.

    A heavy OLAP-only closed-loop workload is driven through the
    no-class-control policy at each candidate limit.  Throughput rises with
    the limit while the server is under-saturated and flattens/declines past
    the thrashing knee; the caller picks the limit at the knee, exactly as
    the paper's authors did.
    """
    base = (config or default_config()).validate()
    results: List[Tuple[float, float]] = []
    classes = [ServiceClass("olap", "olap", VelocityGoal(0.5), importance=1)]
    schedule = constant_schedule(period_seconds, num_periods, {"olap": olap_clients})
    for limit in limits:
        run_config = base.with_updates(system_cost_limit=float(limit))
        result = run_experiment(
            controller="none",
            config=run_config,
            schedule=schedule,
            classes=classes,
        )
        throughput = _steady_state_mean(
            result.collector.metric_series("olap", "throughput"), warmup_periods
        )
        results.append((float(limit), throughput if throughput is not None else 0.0))
    return results


def pick_knee_limit(curve: Sequence[Tuple[float, float]], tolerance: float = 0.03) -> float:
    """The smallest limit achieving within ``tolerance`` of peak throughput."""
    if not curve:
        raise ValueError("empty calibration curve")
    peak = max(t for _, t in curve)
    for limit, throughput in sorted(curve):
        if throughput >= peak * (1.0 - tolerance):
            return limit
    return sorted(curve)[-1][0]


def measure_oltp_response_time(
    olap_limit: float,
    oltp_clients: int,
    olap_clients: int,
    config: Optional[SimulationConfig] = None,
    period_seconds: float = 120.0,
    num_periods: int = 3,
    warmup_periods: int = 1,
) -> Optional[float]:
    """Steady-state OLTP mean response time at a fixed total OLAP cost limit.

    The OLAP classes run behind a static cost limit (no class control); the
    OLTP class bypasses interception, exactly as in the paper's Figure 2
    measurement.
    """
    base = (config or default_config()).validate()
    classes = _calibration_classes()
    schedule = constant_schedule(
        period_seconds,
        num_periods,
        {"olap": olap_clients, "class3": oltp_clients},
    )
    run_config = base.with_updates(system_cost_limit=float(olap_limit))
    result = run_experiment(
        controller="none",
        config=run_config,
        schedule=schedule,
        classes=classes,
    )
    return _steady_state_mean(
        result.collector.metric_series("class3", "response_time"), warmup_periods
    )


def fit_oltp_slope(
    olap_limits: Sequence[float],
    oltp_clients: int = 30,
    olap_clients: int = 8,
    config: Optional[SimulationConfig] = None,
    **kwargs,
) -> Tuple[float, List[Tuple[float, float]]]:
    """Figure 2 regression: slope of OLTP response time vs OLAP cost limit.

    Returns ``(slope_seconds_per_timeron, [(limit, response_time), ...])``.
    Note the returned slope is against the *OLAP* limit; the planner's model
    uses the OLTP reservation ``C_oltp = system - C_olap``, so its prior is
    the negation of this value.
    """
    points: List[Tuple[float, float]] = []
    for limit in olap_limits:
        rt = measure_oltp_response_time(
            olap_limit=float(limit),
            oltp_clients=oltp_clients,
            olap_clients=olap_clients,
            config=config,
            **kwargs,
        )
        if rt is not None:
            points.append((float(limit), rt))
    if len(points) < 2:
        raise ValueError("need at least two measurable points to fit a slope")
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    slope = float(np.polyfit(xs, ys, 1)[0])
    return slope, points
