"""Builds complete deployments and runs the paper's experiments.

The assembly order mirrors the real deployment: an execution backend first
(simulated hardware + engine, or the real-time SQLite engine), Query
Patroller on top, workload clients connecting through QP, then one
*controller* — the Query Scheduler or a baseline — installed as QP's
release handler.

Backend selection flows through ``build_bundle(backend=...)`` /
``run_experiment(backend=...)`` / ``ExperimentSpec(backend=...)``: the
controller stack itself only ever sees the :mod:`repro.runtime` protocols,
so the same controller code drives both substrates.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.config import SimulationConfig, default_config
from repro.core.controllers import (
    NoControlController,
    QPPriorityController,
)
from repro.core.direct import DirectScheduler
from repro.core.mpl import MPLController
from repro.core.scheduler import QueryScheduler
from repro.core.service_class import ServiceClass, paper_classes
from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.obs.tracer import QueryTracer
from repro.patroller.patroller import QueryPatroller
from repro.runtime import (
    BACKEND_NAMES,
    ExecutionBackend,
    ExecutionEngine,
    TimerService,
    make_backend,
)
from repro.sim.rng import RandomStreams
from repro.validation import attach_harness
from repro.workloads.client import ClosedLoopClient
from repro.workloads.schedule import (
    ClientPoolManager,
    PeriodSchedule,
    constant_schedule,
    paper_schedule,
)
from repro.workloads.spec import QueryFactory, WorkloadMix
from repro.workloads.tpcc import tpcc_mix
from repro.workloads.tpch import tpch_mix

#: Controller names accepted by :func:`make_controller`.
CONTROLLER_NAMES = ("none", "qp", "qp_nopriority", "qs", "qs_detect", "mpl", "direct")


@dataclass
class SimulationBundle:
    """Everything that makes up one runnable deployment.

    ``sim`` is the backend's timer service and ``engine`` its execution
    engine — under the simulation backend these are the familiar
    ``Simulator``/``DatabaseEngine`` pair, kept as first-class fields so
    existing code and tests keep reading ``bundle.sim``/``bundle.engine``.
    """

    config: SimulationConfig
    sim: TimerService
    rng: RandomStreams
    engine: ExecutionEngine
    patroller: QueryPatroller
    factory: QueryFactory
    classes: List[ServiceClass]
    mixes: Dict[str, WorkloadMix]
    schedule: PeriodSchedule
    manager: ClientPoolManager
    collector: MetricsCollector
    backend: Optional[ExecutionBackend] = None
    controller: Optional[object] = None

    def historical_olap_costs(self) -> List[float]:
        """Exact template costs of the OLAP mixes (QP group calibration)."""
        costs: List[float] = []
        seen = set()
        for service_class in self.classes:
            if not service_class.directly_controlled:
                continue
            mix = self.mixes[service_class.name]
            if mix.name in seen:
                continue
            seen.add(mix.name)
            for template in mix.templates:
                costs.append(
                    self.engine.estimator.true_cost(
                        template.cpu_demand, template.io_demand
                    )
                )
        return costs

    def run(self, horizon: Optional[float] = None) -> None:
        """Run the deployment to its schedule horizon (or ``horizon``)."""
        end = horizon if horizon is not None else self.schedule.horizon
        if self.backend is not None:
            self.backend.run_until(end)
        else:
            self.sim.run_until(end)

    def close(self) -> None:
        """Release backend resources (idempotent; no-op for the sim)."""
        if self.backend is not None:
            self.backend.close()


@dataclass
class ExperimentSpec:
    """One experiment, as data.

    Replaces :func:`run_experiment`'s keyword sprawl: build a spec, tweak
    it with :func:`dataclasses.replace`, hand it to :func:`run_spec` (or
    ``run_experiment(spec=...)``).  The old ``run_experiment`` keywords
    remain a thin shim over this.

    ``faults`` are behavioral :class:`~repro.faults.ScheduledFault`
    injections applied to the assembled bundle before the run starts (the
    scenario format's ``faults:`` section compiles to these).
    """

    controller: str = "qs"
    config: Optional[SimulationConfig] = None
    schedule: Optional[PeriodSchedule] = None
    classes: Optional[List[ServiceClass]] = None
    static_olap_limit: Optional[float] = None
    invariants: str = "off"
    tracing: bool = False
    backend: str = "sim"
    backend_options: Dict[str, Any] = field(default_factory=dict)
    horizon: Optional[float] = None
    faults: Tuple["ScheduledFault", ...] = ()  # noqa: F821

    def __post_init__(self) -> None:
        # Every spec owns its options: ``replace``/``with_overrides`` run
        # through here again, so two specs derived from one base can never
        # alias (and mutate) the same dict — scenario sweeps tweak
        # ``backend_options`` per run.
        self.backend_options = copy.deepcopy(self.backend_options)
        self.faults = tuple(self.faults)

    def with_overrides(self, **changes: Any) -> "ExperimentSpec":
        """A copy with the given fields replaced (no shared mutable state)."""
        return replace(self, **changes)


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    controller_name: str
    config: SimulationConfig
    classes: List[ServiceClass]
    schedule: PeriodSchedule
    collector: MetricsCollector
    bundle: SimulationBundle
    extras: Dict[str, object] = field(default_factory=dict)

    def performance_series(self) -> Dict[str, List[Optional[float]]]:
        """Per-class goal-metric series (the Figures 4-6 payload)."""
        return {
            c.name: self.collector.performance_series(c) for c in self.classes
        }

    def goal_attainment(self) -> Dict[str, float]:
        """Per-class fraction of periods meeting the goal."""
        return {c.name: self.collector.goal_attainment(c) for c in self.classes}


def realtime_smoke_schedule(
    config: SimulationConfig, classes: List[ServiceClass]
) -> PeriodSchedule:
    """Default schedule for real-time backends: a light constant load.

    The paper schedule drives tens of clients for minutes of period time —
    fine in virtual time, not in wall-clock smoke runs.  This keeps one
    client per OLAP class and two per OLTP class over the configured
    number of (short) periods.
    """
    return constant_schedule(
        config.scale.period_seconds,
        config.scale.num_periods,
        {c.name: (1 if c.kind == "olap" else 2) for c in classes},
    )


def default_schedule(
    config: SimulationConfig,
    classes: List[ServiceClass],
    backend: str = "sim",
) -> PeriodSchedule:
    """The schedule a spec without an explicit one runs (backend-aware).

    The simulation backend gets the paper's Figure 3 schedule trimmed to
    the configured period count; real-time backends get the light
    :func:`realtime_smoke_schedule`.  Factored out of :func:`build_bundle`
    so harnesses that pre-partition schedules (the sharded control plane)
    resolve exactly the schedule a plain run would.
    """
    if backend != "sim":
        return realtime_smoke_schedule(config, classes)
    schedule = paper_schedule(config.scale.period_seconds)
    if schedule.num_periods != config.scale.num_periods:
        schedule = PeriodSchedule(
            config.scale.period_seconds,
            {
                name: series[: config.scale.num_periods]
                for name, series in schedule.counts.items()
            },
        )
    return schedule


def build_bundle(
    config: Optional[SimulationConfig] = None,
    schedule: Optional[PeriodSchedule] = None,
    classes: Optional[List[ServiceClass]] = None,
    mixes: Optional[Dict[str, WorkloadMix]] = None,
    backend: str = "sim",
    backend_options: Optional[Dict[str, Any]] = None,
) -> SimulationBundle:
    """Assemble backend, patroller, workloads and metrics (no controller yet).

    ``backend`` selects the execution substrate (see
    :data:`repro.runtime.BACKEND_NAMES`); ``backend_options`` pass through
    to the backend constructor.  With a real-time backend and no explicit
    ``schedule``, :func:`realtime_smoke_schedule` is used — the paper
    schedule's client counts are sized for virtual time.
    """
    config = (config or default_config()).validate()
    classes = list(classes) if classes is not None else list(paper_classes())
    if schedule is None:
        schedule = default_schedule(config, classes, backend)
    if mixes is None:
        olap = tpch_mix()
        oltp = tpcc_mix()
        mixes = {}
        for service_class in classes:
            mixes[service_class.name] = olap if service_class.kind == "olap" else oltp
    missing = [c.name for c in classes if c.name not in mixes]
    if missing:
        raise ConfigurationError("no workload mix for classes {}".format(missing))
    unknown = [name for name in schedule.counts if name not in {c.name for c in classes}]
    if unknown:
        raise ConfigurationError("schedule covers unknown classes {}".format(unknown))

    rng = RandomStreams(config.seed)
    backend_obj = make_backend(backend, config, rng, **(backend_options or {}))
    sim = backend_obj.timers
    engine = backend_obj.engine
    patroller = QueryPatroller(sim, engine, config.patroller)
    factory = QueryFactory(engine.estimator, rng)
    collector = MetricsCollector(engine, schedule, classes)

    def client_builder(class_name: str, client_id: str) -> ClosedLoopClient:
        return ClosedLoopClient(
            sim=sim,
            patroller=patroller,
            factory=factory,
            mix=mixes[class_name],
            class_name=class_name,
            client_id=client_id,
            think_time=config.scale.think_time,
        )

    manager = ClientPoolManager(sim, schedule, client_builder)
    return SimulationBundle(
        config=config,
        sim=sim,
        rng=rng,
        engine=engine,
        patroller=patroller,
        factory=factory,
        classes=classes,
        mixes=mixes,
        schedule=schedule,
        manager=manager,
        collector=collector,
        backend=backend_obj,
    )


def make_controller(
    bundle: SimulationBundle,
    name: str,
    static_olap_limit: Optional[float] = None,
) -> object:
    """Build and attach the named controller to a bundle.

    ``"none"``          -- system cost limit only (Figure 4 baseline)
    ``"qp"``            -- DB2 QP static groups + priorities (Figure 5)
    ``"qp_nopriority"`` -- same with priority control off (Section 4.2.2)
    ``"qs"``            -- the Query Scheduler (Figure 6/7)
    ``"qs_detect"``     -- Query Scheduler + explicit workload detection
    ``"mpl"``           -- MPL admission control extension ([5])
    ``"direct"``        -- in-engine direct control extension (Section 5)
    """
    config = bundle.config
    if name == "none":
        controller: object = NoControlController(
            bundle.patroller, bundle.engine, bundle.classes, config.system_cost_limit
        )
    elif name in ("qp", "qp_nopriority"):
        controller = QPPriorityController(
            bundle.patroller,
            bundle.engine,
            bundle.classes,
            historical_costs=bundle.historical_olap_costs(),
            static_olap_limit=(
                static_olap_limit
                if static_olap_limit is not None
                else config.system_cost_limit
            ),
            priority_control=(name == "qp"),
        )
    elif name in ("qs", "qs_detect"):
        scheduler = QueryScheduler(
            bundle.sim, bundle.engine, bundle.patroller, bundle.classes, config
        )
        if name == "qs_detect":
            scheduler.enable_detection()
        controller = scheduler
    elif name == "mpl":
        controller = MPLController(
            bundle.sim,
            bundle.patroller,
            bundle.engine,
            bundle.classes,
            control_interval=config.planner.control_interval,
        )
    elif name == "direct":
        controller = DirectScheduler(
            bundle.sim, bundle.engine, bundle.classes, config
        )
    else:
        raise ConfigurationError(
            "unknown controller {!r}; expected one of {}".format(name, CONTROLLER_NAMES)
        )
    bundle.controller = controller
    return controller


def run_spec(
    spec: ExperimentSpec,
    hub: Optional["TelemetryHub"] = None,  # noqa: F821
    shard: Optional[int] = None,
) -> ExperimentResult:
    """Run one full scheduled experiment described by ``spec``.

    ``spec.invariants`` selects the runtime validation mode: ``"off"`` (no
    harness), ``"warn"`` (check at every control interval, record
    violations into telemetry) or ``"strict"`` (additionally raise
    :class:`~repro.errors.InvariantViolation` on the first ERROR-or-worse
    violation).  The attached harness rides along in
    ``result.extras["validation"]``.

    ``spec.tracing`` attaches a :class:`~repro.obs.QueryTracer` that
    records one balanced span per query lifecycle phase; it rides along
    (finalised) in ``result.extras["tracer"]``.

    ``hub`` optionally attaches a
    :class:`~repro.obs.live.TelemetryHub`: a
    :class:`~repro.obs.live.RunPublisher` then streams one ``interval``
    event per control interval (plus ``spans``/``run_end``) tagged with
    ``shard``.  The hub is deliberately *not* a spec field — specs stay
    picklable for the parallel runners, hubs carry live threads.
    Publishing is observation-only: results are bit-identical with or
    without a hub.

    Real-time backends are closed (worker threads stopped, database
    removed) before this returns, even on failure; the collected metrics
    remain readable afterwards.
    """
    if spec.backend not in BACKEND_NAMES:
        raise ConfigurationError(
            "unknown backend {!r}; expected one of {}".format(
                spec.backend, BACKEND_NAMES
            )
        )
    bundle = build_bundle(
        config=spec.config,
        schedule=spec.schedule,
        classes=spec.classes,
        backend=spec.backend,
        backend_options=dict(spec.backend_options),
    )
    try:
        built = make_controller(
            bundle, spec.controller, static_olap_limit=spec.static_olap_limit
        )
        if isinstance(built, QueryScheduler):  # covers qs and qs_detect
            built.planner.add_plan_listener(bundle.collector.on_plan)
        tracer = None
        if spec.tracing:
            tracer = QueryTracer(
                clock=bundle.sim,
                patroller=bundle.patroller,
                engine=bundle.engine,
                schedule=bundle.schedule,
            )
        # The harness attaches after the telemetry and collector listeners
        # so a check at an interval boundary sees the interval's record
        # already written (and can embed its violations there).
        harness = attach_harness(bundle, mode=spec.invariants)
        publisher = None
        if hub is not None:
            from repro.obs.live.publish import RunPublisher

            # After the harness: each interval event then carries the
            # record with any violations already embedded.
            publisher = RunPublisher(
                hub, bundle, built, shard=shard, tracer=tracer
            )
            publisher.attach()
            if shard is None:
                publisher.publish_start()
        built.start()
        bundle.manager.start()
        injector = None
        if spec.faults:
            from repro.faults import FaultInjector

            injector = FaultInjector(bundle)
            for fault in spec.faults:
                injector.apply(fault)
        bundle.run(horizon=spec.horizon)
    finally:
        bundle.close()
    result = ExperimentResult(
        controller_name=spec.controller,
        config=bundle.config,
        classes=bundle.classes,
        schedule=bundle.schedule,
        collector=bundle.collector,
        bundle=bundle,
    )
    if isinstance(built, QueryScheduler):
        result.extras["telemetry"] = built.telemetry.store
        result.extras["metrics_registry"] = built.registry
    if harness is not None:
        result.extras["validation"] = harness
    if injector is not None:
        result.extras["faults"] = injector
    if tracer is not None:
        tracer.finalize()
        result.extras["tracer"] = tracer
    if publisher is not None:
        result.extras["live_publisher"] = publisher
        publisher.publish_end(result)
    return result


def run_experiment(
    controller: str = "qs",
    config: Optional[SimulationConfig] = None,
    schedule: Optional[PeriodSchedule] = None,
    classes: Optional[List[ServiceClass]] = None,
    static_olap_limit: Optional[float] = None,
    invariants: str = "off",
    tracing: bool = False,
    backend: str = "sim",
    horizon: Optional[float] = None,
    spec: Optional[ExperimentSpec] = None,
) -> ExperimentResult:
    """Run one experiment (thin keyword shim over :func:`run_spec`).

    Pass ``spec=`` to supply an :class:`ExperimentSpec` directly; the
    individual keywords are then ignored.
    """
    if spec is None:
        spec = ExperimentSpec(
            controller=controller,
            config=config,
            schedule=schedule,
            classes=classes,
            static_olap_limit=static_olap_limit,
            invariants=invariants,
            tracing=tracing,
            backend=backend,
            horizon=horizon,
        )
    return run_spec(spec)
