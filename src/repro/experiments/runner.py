"""Builds complete simulations and runs the paper's experiments.

The assembly order mirrors the real deployment: simulated hardware and
engine first, Query Patroller on top, workload clients connecting through
QP, then one *controller* — the Query Scheduler or a baseline — installed
as QP's release handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import SimulationConfig, default_config
from repro.core.controllers import (
    Controller,
    NoControlController,
    QPPriorityController,
)
from repro.core.direct import DirectScheduler
from repro.core.mpl import MPLController
from repro.core.scheduler import QueryScheduler
from repro.core.service_class import ServiceClass, paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.obs.tracer import QueryTracer
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.validation import attach_harness
from repro.workloads.client import ClosedLoopClient
from repro.workloads.schedule import ClientPoolManager, PeriodSchedule, paper_schedule
from repro.workloads.spec import QueryFactory, WorkloadMix
from repro.workloads.tpcc import tpcc_mix
from repro.workloads.tpch import tpch_mix

#: Controller names accepted by :func:`make_controller`.
CONTROLLER_NAMES = ("none", "qp", "qp_nopriority", "qs", "qs_detect", "mpl", "direct")


@dataclass
class SimulationBundle:
    """Everything that makes up one runnable simulated deployment."""

    config: SimulationConfig
    sim: Simulator
    rng: RandomStreams
    engine: DatabaseEngine
    patroller: QueryPatroller
    factory: QueryFactory
    classes: List[ServiceClass]
    mixes: Dict[str, WorkloadMix]
    schedule: PeriodSchedule
    manager: ClientPoolManager
    collector: MetricsCollector
    controller: Optional[object] = None

    def historical_olap_costs(self) -> List[float]:
        """Exact template costs of the OLAP mixes (QP group calibration)."""
        costs: List[float] = []
        seen = set()
        for service_class in self.classes:
            if not service_class.directly_controlled:
                continue
            mix = self.mixes[service_class.name]
            if mix.name in seen:
                continue
            seen.add(mix.name)
            for template in mix.templates:
                costs.append(
                    self.engine.estimator.true_cost(
                        template.cpu_demand, template.io_demand
                    )
                )
        return costs

    def run(self, horizon: Optional[float] = None) -> None:
        """Run the simulation to its schedule horizon (or ``horizon``)."""
        end = horizon if horizon is not None else self.schedule.horizon
        self.sim.run_until(end)


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    controller_name: str
    config: SimulationConfig
    classes: List[ServiceClass]
    schedule: PeriodSchedule
    collector: MetricsCollector
    bundle: SimulationBundle
    extras: Dict[str, object] = field(default_factory=dict)

    def performance_series(self) -> Dict[str, List[Optional[float]]]:
        """Per-class goal-metric series (the Figures 4-6 payload)."""
        return {
            c.name: self.collector.performance_series(c) for c in self.classes
        }

    def goal_attainment(self) -> Dict[str, float]:
        """Per-class fraction of periods meeting the goal."""
        return {c.name: self.collector.goal_attainment(c) for c in self.classes}


def build_bundle(
    config: Optional[SimulationConfig] = None,
    schedule: Optional[PeriodSchedule] = None,
    classes: Optional[List[ServiceClass]] = None,
    mixes: Optional[Dict[str, WorkloadMix]] = None,
) -> SimulationBundle:
    """Assemble engine, patroller, workloads and metrics (no controller yet)."""
    config = (config or default_config()).validate()
    classes = list(classes) if classes is not None else list(paper_classes())
    if schedule is None:
        schedule = paper_schedule(config.scale.period_seconds)
        if schedule.num_periods != config.scale.num_periods:
            schedule = PeriodSchedule(
                config.scale.period_seconds,
                {
                    name: series[: config.scale.num_periods]
                    for name, series in schedule.counts.items()
                },
            )
    if mixes is None:
        olap = tpch_mix()
        oltp = tpcc_mix()
        mixes = {}
        for service_class in classes:
            mixes[service_class.name] = olap if service_class.kind == "olap" else oltp
    missing = [c.name for c in classes if c.name not in mixes]
    if missing:
        raise ConfigurationError("no workload mix for classes {}".format(missing))
    unknown = [name for name in schedule.counts if name not in {c.name for c in classes}]
    if unknown:
        raise ConfigurationError("schedule covers unknown classes {}".format(unknown))

    sim = Simulator()
    rng = RandomStreams(config.seed)
    engine = DatabaseEngine(sim, config, rng)
    patroller = QueryPatroller(sim, engine, config.patroller)
    factory = QueryFactory(engine.estimator, rng)
    collector = MetricsCollector(engine, schedule, classes)

    def client_builder(class_name: str, client_id: str) -> ClosedLoopClient:
        return ClosedLoopClient(
            sim=sim,
            patroller=patroller,
            factory=factory,
            mix=mixes[class_name],
            class_name=class_name,
            client_id=client_id,
            think_time=config.scale.think_time,
        )

    manager = ClientPoolManager(sim, schedule, client_builder)
    return SimulationBundle(
        config=config,
        sim=sim,
        rng=rng,
        engine=engine,
        patroller=patroller,
        factory=factory,
        classes=classes,
        mixes=mixes,
        schedule=schedule,
        manager=manager,
        collector=collector,
    )


def make_controller(
    bundle: SimulationBundle,
    name: str,
    static_olap_limit: Optional[float] = None,
) -> object:
    """Build and attach the named controller to a bundle.

    ``"none"``          -- system cost limit only (Figure 4 baseline)
    ``"qp"``            -- DB2 QP static groups + priorities (Figure 5)
    ``"qp_nopriority"`` -- same with priority control off (Section 4.2.2)
    ``"qs"``            -- the Query Scheduler (Figure 6/7)
    ``"qs_detect"``     -- Query Scheduler + explicit workload detection
    ``"mpl"``           -- MPL admission control extension ([5])
    ``"direct"``        -- in-engine direct control extension (Section 5)
    """
    config = bundle.config
    if name == "none":
        controller: object = NoControlController(
            bundle.patroller, bundle.engine, bundle.classes, config.system_cost_limit
        )
    elif name in ("qp", "qp_nopriority"):
        controller = QPPriorityController(
            bundle.patroller,
            bundle.engine,
            bundle.classes,
            historical_costs=bundle.historical_olap_costs(),
            static_olap_limit=(
                static_olap_limit
                if static_olap_limit is not None
                else config.system_cost_limit
            ),
            priority_control=(name == "qp"),
        )
    elif name in ("qs", "qs_detect"):
        scheduler = QueryScheduler(
            bundle.sim, bundle.engine, bundle.patroller, bundle.classes, config
        )
        if name == "qs_detect":
            scheduler.enable_detection()
        controller = scheduler
    elif name == "mpl":
        controller = MPLController(
            bundle.sim,
            bundle.patroller,
            bundle.engine,
            bundle.classes,
            control_interval=config.planner.control_interval,
        )
    elif name == "direct":
        controller = DirectScheduler(
            bundle.sim, bundle.engine, bundle.classes, config
        )
    else:
        raise ConfigurationError(
            "unknown controller {!r}; expected one of {}".format(name, CONTROLLER_NAMES)
        )
    bundle.controller = controller
    return controller


def run_experiment(
    controller: str = "qs",
    config: Optional[SimulationConfig] = None,
    schedule: Optional[PeriodSchedule] = None,
    classes: Optional[List[ServiceClass]] = None,
    static_olap_limit: Optional[float] = None,
    invariants: str = "off",
    tracing: bool = False,
) -> ExperimentResult:
    """Run one full scheduled experiment under the named controller.

    ``invariants`` selects the runtime validation mode: ``"off"`` (no
    harness), ``"warn"`` (check at every control interval, record
    violations into telemetry) or ``"strict"`` (additionally raise
    :class:`~repro.errors.InvariantViolation` on the first ERROR-or-worse
    violation).  The attached harness rides along in
    ``result.extras["validation"]``.

    ``tracing`` attaches a :class:`~repro.obs.QueryTracer` that records one
    balanced span per query lifecycle phase; it rides along (finalised) in
    ``result.extras["tracer"]``.
    """
    bundle = build_bundle(config=config, schedule=schedule, classes=classes)
    built = make_controller(bundle, controller, static_olap_limit=static_olap_limit)
    if isinstance(built, QueryScheduler):  # covers qs and qs_detect
        built.planner.add_plan_listener(bundle.collector.on_plan)
    tracer = None
    if tracing:
        tracer = QueryTracer(
            sim=bundle.sim,
            patroller=bundle.patroller,
            engine=bundle.engine,
            schedule=bundle.schedule,
        )
    # The harness attaches after the telemetry and collector listeners so a
    # check at an interval boundary sees the interval's record already
    # written (and can embed its violations there).
    harness = attach_harness(bundle, mode=invariants)
    built.start()
    bundle.manager.start()
    bundle.run()
    result = ExperimentResult(
        controller_name=controller,
        config=bundle.config,
        classes=bundle.classes,
        schedule=bundle.schedule,
        collector=bundle.collector,
        bundle=bundle,
    )
    if isinstance(built, QueryScheduler):
        result.extras["telemetry"] = built.telemetry.store
        result.extras["metrics_registry"] = built.registry
    if harness is not None:
        result.extras["validation"] = harness
    if tracer is not None:
        tracer.finalize()
        result.extras["tracer"] = tracer
    return result
