"""Model ablation: paper-analytic vs learned vs oracle, on real scenarios.

The prediction layer is a seam (:mod:`repro.core.modeling`), so the
natural question is measurable: *how much does the model matter?*  This
experiment replays scenarios from the YAML library once per model spec
and compares

* **SLO attainment** — per-class fraction of periods meeting the goal
  (the controller-quality view: a better model should steer better);
* **per-interval prediction error** — the telemetry layer's one-step
  mean absolute error between what the model promised under the plan it
  chose and what the next interval measured (the model-quality view);
* **invariant violations** — whether the run stayed consistent.

The ``learned`` entry is trained the honest way: the scenario first runs
under the paper model, its exported telemetry trace becomes the training
set (``fit_from_records`` — the same replay path as ``repro train``),
and the trained weights then drive a fresh live run via
``learned:<path>``.  ``oracle`` is the last-value persistence baseline:
any model worth its parameters must beat it on shifting workloads.

``repro ablate-models`` is the CLI wrapper; ``repro bench --only
model_ablation`` wraps the single-scenario smoke variant.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Dict, List, Optional, Sequence

from repro.core.modeling import fit_from_records, save_model
from repro.errors import ExperimentError

#: Scenarios the ablation replays by default: the paper's own workload
#: plus the two workload-shift stressors (continuous drift and a spike).
DEFAULT_SCENARIOS = ("paper-figure3", "diurnal", "flash-crowd")

#: Model specs compared by default (order is presentation order).
DEFAULT_MODELS = ("paper", "learned", "oracle")


def _mean(values: Sequence[float]) -> Optional[float]:
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def _summarise(result, store) -> Dict:
    """Attainment + prediction-error + violation summary of one run."""
    attainment = result.goal_attainment()
    summary: Dict = {
        "attainment": {name: round(v, 4) for name, v in attainment.items()},
        "attainment_mean": _mean(list(attainment.values())),
        "intervals": len(store) if store is not None else None,
    }
    if store is not None:
        errors = store.prediction_error_summary()
        summary["prediction_mae"] = {
            name: s.mean_abs_error for name, s in sorted(errors.items())
        }
        summary["prediction_mae_mean"] = _mean(
            [s.mean_abs_error for s in errors.values()]
        )
        summary["violations"] = len(store.violations())
    else:
        summary["prediction_mae"] = {}
        summary["prediction_mae_mean"] = None
        summary["violations"] = None
    return summary


def _run_with_model(scenario, model_spec, smoke, seed, invariants):
    from repro.experiments.runner import run_spec
    from repro.experiments.sensitivity import set_config_field
    from repro.scenarios import to_experiment_spec

    spec = to_experiment_spec(
        scenario, smoke=smoke, invariants=invariants, seed=seed
    )
    spec = spec.with_overrides(
        config=set_config_field(spec.config, "planner.model", model_spec)
    )
    return run_spec(spec)


def run_model_ablation(
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    models: Sequence[str] = DEFAULT_MODELS,
    smoke: bool = True,
    seed: Optional[int] = None,
    invariants: Optional[str] = "warn",
) -> Dict:
    """Replay each scenario once per model; return the comparison report.

    ``invariants`` defaults to ``"warn"`` so a model that destabilises a
    run shows up as a violation *count* in the table instead of aborting
    the whole ablation; pass ``"strict"`` to make any violation fatal.
    """
    from repro.scenarios import find_scenario

    report: Dict = {"smoke": smoke, "models": list(models), "scenarios": {}}
    for scenario_name in scenarios:
        scenario = find_scenario(scenario_name)
        if scenario.controller not in ("qs", "qs_detect"):
            raise ExperimentError(
                "model ablation needs a Query Scheduler scenario; {!r} uses "
                "controller {!r}".format(scenario.name, scenario.controller)
            )
        entry: Dict[str, Dict] = {}
        # The paper run doubles as the learned model's training trace.
        paper_result = _run_with_model(scenario, "paper", smoke, seed, invariants)
        paper_store = paper_result.extras.get("telemetry")
        if paper_store is None:
            raise ExperimentError(
                "scenario {!r} produced no telemetry store".format(scenario.name)
            )
        records = [record.to_dict() for record in paper_store]
        if "paper" in models:
            entry["paper"] = _summarise(paper_result, paper_store)
        workdir = tempfile.mkdtemp(prefix="repro-ablation-")
        try:
            for model_spec in models:
                if model_spec == "paper":
                    continue
                run_spec_string = model_spec
                if model_spec == "learned":
                    trained = fit_from_records(records)
                    path = os.path.join(
                        workdir, "{}-learned.json".format(scenario.name)
                    )
                    save_model(trained, path)
                    run_spec_string = "learned:" + path
                result = _run_with_model(
                    scenario, run_spec_string, smoke, seed, invariants
                )
                entry[model_spec] = _summarise(
                    result, result.extras.get("telemetry")
                )
                if model_spec == "learned":
                    entry[model_spec]["trained_observations"] = trained.observations
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        report["scenarios"][scenario.name] = entry
    return report


def format_ablation_table(report: Dict) -> str:
    """The ablation report as one aligned ASCII table."""

    def fmt(value, width, precision=4):
        if value is None:
            return "-".rjust(width)
        return "{:.{p}f}".format(value, p=precision).rjust(width)

    lines: List[str] = [
        "Model ablation ({} mode)".format("smoke" if report.get("smoke") else "full"),
        "{:<16} {:<10} {:>10} {:>10} {:>10}".format(
            "scenario", "model", "attain", "pred-MAE", "violations"
        ),
    ]
    for scenario_name, entry in sorted(report.get("scenarios", {}).items()):
        for model_spec in report.get("models", sorted(entry)):
            summary = entry.get(model_spec)
            if summary is None:
                continue
            violations = summary.get("violations")
            lines.append(
                "{:<16} {:<10} {} {} {:>10}".format(
                    scenario_name,
                    model_spec,
                    fmt(summary.get("attainment_mean"), 10),
                    fmt(summary.get("prediction_mae_mean"), 10),
                    "-" if violations is None else str(violations),
                )
            )
    return "\n".join(lines)
