"""Parallel experiment execution over a process pool.

Every multi-run harness in this package — :func:`~repro.experiments.replication.replicate`,
:func:`~repro.experiments.replication.compare`,
:func:`~repro.experiments.sensitivity.sweep` — used to run its simulations
back-to-back in one process, so a 7-seed x 4-controller paired comparison
paid 28 full simulations serially.  The runs are embarrassingly parallel
(each one is deterministic given its seed and touches no shared state), but
:class:`~repro.experiments.runner.ExperimentResult` holds the live
:class:`~repro.experiments.runner.SimulationBundle` — simulator, engine,
clients, listener closures — and cannot cross a process boundary.

This module supplies the picklable counterparts:

* :class:`RunRequest` — what to run: controller name, validated
  configuration, optional schedule and service classes (all plain frozen
  dataclasses or simple containers, so the request pickles cleanly);
* :class:`RunSummary` — what came back, extracted *inside* the worker:
  per-class goal attainment, the per-period goal-metric series, the
  controller telemetry interval records, and solver statistics;
* :class:`RunOutcome` — one request's terminal state: a summary on
  success, an error string (with traceback) on failure, never both;
* :func:`run_requests` — the fan-out: serial for ``jobs=1``, a
  ``ProcessPoolExecutor`` otherwise, with deterministic result ordering
  (outcomes are returned in request order regardless of completion order),
  per-run failure isolation (one crashed run yields an error outcome
  instead of killing the batch), and optional progress callbacks.

Because each simulation is deterministic given its seed, fanning the same
requests over any number of workers produces bitwise-identical summaries —
``jobs`` changes wall-clock time, never results.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import SimulationConfig
from repro.core.service_class import ServiceClass
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
    run_spec,
)
from repro.metrics.telemetry import ControlIntervalRecord, TelemetryStore
from repro.workloads.schedule import PeriodSchedule

#: Progress hook signature: ``(outcome, completed_count, total_count)``.
#: Called in *completion* order as runs finish; the outcome's ``index``
#: says which request it belongs to.
ProgressCallback = Callable[["RunOutcome", int, int], None]


@dataclass(frozen=True)
class RunRequest:
    """A picklable description of one experiment run.

    Carries exactly what :func:`~repro.experiments.runner.run_experiment`
    needs — controller name, configuration, schedule, service classes,
    optional static OLAP limit — plus a free-form ``label`` used by
    progress reporting.  All fields are immutable values (frozen
    dataclasses, tuples, floats), so a request crosses a process boundary
    without ceremony.

    A request may instead carry a full
    :class:`~repro.experiments.runner.ExperimentSpec` in ``spec`` — the
    scenario path, where backend choice, invariant mode, and scheduled
    faults must cross the process boundary too.  When ``spec`` is set it
    is authoritative and the individual fields are ignored (``controller``
    should mirror ``spec.controller`` for display purposes).
    """

    controller: str
    config: Optional[SimulationConfig] = None
    schedule: Optional[PeriodSchedule] = None
    classes: Optional[Tuple[ServiceClass, ...]] = None
    static_olap_limit: Optional[float] = None
    label: Optional[str] = None
    spec: Optional[ExperimentSpec] = None

    @property
    def seed(self) -> Optional[int]:
        """The request's seed (None when the default config will be used)."""
        if self.spec is not None and self.spec.config is not None:
            return self.spec.config.seed
        return self.config.seed if self.config is not None else None

    @property
    def request_label(self) -> str:
        """The request's display identity — the explicit label, or a
        derived ``controller:seed`` form.  Batch builders (``sweep``,
        ``replicate``, the sharded runner) guarantee these are unique
        within one batch, so progress lines and result tables never
        conflate two runs."""
        return self.describe()

    def describe(self) -> str:
        """Short human-readable identity for logs and progress lines."""
        if self.label:
            return self.label
        seed = self.seed
        if seed is not None:
            return "{}:seed={}".format(self.controller, seed)
        return self.controller


@dataclass
class RunSummary:
    """The slim, picklable outcome of one experiment run.

    Extracted from the live :class:`~repro.experiments.runner.ExperimentResult`
    *inside* the worker process by :func:`summarize_result`, so only plain
    data crosses back: attainment numbers, metric series, telemetry
    records (themselves frozen dataclasses) and solver statistics.
    """

    controller: str
    seed: int
    class_names: Tuple[str, ...]
    #: Per-class fraction of periods meeting the goal.
    attainment: Dict[str, float]
    #: Per-class goal-metric series (velocity or response time per period).
    performance_series: Dict[str, List[Optional[float]]]
    total_completions: int
    label: Optional[str] = None
    #: Control-interval telemetry (Query Scheduler runs; empty otherwise).
    telemetry_records: Tuple[ControlIntervalRecord, ...] = ()
    #: Solver statistics (``solve_calls``, ``total_evaluations``,
    #: ``last_objective``) when the run produced telemetry.
    solver_stats: Dict[str, object] = field(default_factory=dict)
    #: Completed queries per class — the aggregation weights: cross-run
    #: attainment pools by these counts instead of averaging run means.
    class_completions: Dict[str, int] = field(default_factory=dict)
    #: Per-class response-time histogram states
    #: (:meth:`~repro.sim.stats.Histogram.to_dict` dicts, merged over the
    #: run's periods) so percentile reporting composes across runs/shards.
    response_histograms: Dict[str, Dict] = field(default_factory=dict)

    def metric_mean(self, class_name: str) -> Optional[float]:
        """Mean of the class's non-empty period metrics (None if all empty)."""
        values = [v for v in self.performance_series[class_name] if v is not None]
        if not values:
            return None
        return sum(values) / len(values)

    def telemetry_store(self) -> TelemetryStore:
        """Rebuild a queryable :class:`TelemetryStore` from the records."""
        store = TelemetryStore()
        for record in self.telemetry_records:
            store.append(record)
        return store


@dataclass
class RunOutcome:
    """Terminal state of one request: a summary or an error, never both.

    A worker that raises reports the exception (type, message, traceback)
    in ``error``; the rest of the batch is unaffected.
    """

    index: int
    request: RunRequest
    summary: Optional[RunSummary] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the run completed and produced a summary."""
        return self.error is None


def summarize_result(
    result: ExperimentResult, label: Optional[str] = None
) -> RunSummary:
    """Extract the picklable :class:`RunSummary` from a live result.

    Called inside the worker process; everything it touches on ``result``
    is read-only, and everything it returns is plain data.
    """
    attainment = result.goal_attainment()
    series = result.performance_series()
    store = result.extras.get("telemetry")
    records: Tuple[ControlIntervalRecord, ...] = ()
    solver_stats: Dict[str, object] = {}
    if isinstance(store, TelemetryStore) and len(store):
        records = tuple(store.records)
        last = records[-1]
        solver_stats = {
            "solve_calls": last.solver.solve_calls,
            "total_evaluations": sum(r.solver.evaluations for r in records),
            "last_objective": last.solver.objective,
        }
    histograms: Dict[str, Dict] = {}
    for service_class in result.classes:
        merged = result.collector.class_response_histogram(service_class.name)
        if merged is not None:
            histograms[service_class.name] = merged.to_dict()
    return RunSummary(
        controller=result.controller_name,
        seed=result.config.seed,
        class_names=tuple(c.name for c in result.classes),
        attainment=attainment,
        performance_series=series,
        total_completions=result.collector.total_completions,
        label=label,
        telemetry_records=records,
        solver_stats=solver_stats,
        class_completions=result.collector.completions_by_class(),
        response_histograms=histograms,
    )


def execute_request(request: RunRequest) -> RunSummary:
    """Run one request in-process and summarize it (raises on failure)."""
    if request.spec is not None:
        result = run_spec(request.spec)
    else:
        result = run_experiment(
            controller=request.controller,
            config=request.config,
            schedule=request.schedule,
            classes=list(request.classes) if request.classes is not None else None,
            static_olap_limit=request.static_olap_limit,
        )
    return summarize_result(result, label=request.label)


def _execute_indexed(index: int, request: RunRequest) -> RunOutcome:
    """Worker entry point: never raises, always returns an outcome."""
    try:
        return RunOutcome(index=index, request=request,
                          summary=execute_request(request))
    except Exception:
        return RunOutcome(index=index, request=request,
                          error=traceback.format_exc())


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` argument: None means one worker per CPU."""
    if jobs is None:
        return os.cpu_count() or 1
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ConfigurationError(
            "jobs must be a positive integer or None, got {!r}".format(jobs)
        )
    return jobs


def run_requests(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
) -> List[RunOutcome]:
    """Execute every request, serially or over a process pool.

    Parameters
    ----------
    requests:
        The runs to execute.
    jobs:
        Worker processes.  ``1`` (the default) runs everything in-process
        with no pool; ``None`` means one worker per CPU.  Worker count
        never changes results — only wall-clock time.
    progress:
        Optional ``(outcome, completed, total)`` hook, called as each run
        finishes (completion order under a pool).

    Returns
    -------
    One :class:`RunOutcome` per request, **in request order** regardless
    of completion order.  A run that raises yields an error outcome; the
    remaining runs are unaffected.
    """
    requests = list(requests)
    jobs = resolve_jobs(jobs)
    total = len(requests)
    outcomes: List[Optional[RunOutcome]] = [None] * total
    if total == 0:
        return []
    if jobs == 1 or total == 1:
        done = 0
        for index, request in enumerate(requests):
            outcome = _execute_indexed(index, request)
            outcomes[index] = outcome
            done += 1
            if progress is not None:
                progress(outcome, done, total)
        return outcomes  # type: ignore[return-value]
    with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
        futures = {
            pool.submit(_execute_indexed, index, request): (index, request)
            for index, request in enumerate(requests)
        }
        done = 0
        for future in as_completed(futures):
            index, request = futures[future]
            try:
                outcome = future.result()
            except Exception as exc:  # pool breakage (worker died, OS error)
                outcome = RunOutcome(
                    index=index,
                    request=request,
                    error="{}: {}".format(type(exc).__name__, exc),
                )
            outcomes[index] = outcome
            done += 1
            if progress is not None:
                progress(outcome, done, total)
    return outcomes  # type: ignore[return-value]
