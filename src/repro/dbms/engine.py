"""The simulated database engine.

:class:`DatabaseEngine` executes queries phase by phase on two
processor-sharing pools (CPU and disks), under an agent pool and the
overload model.  It exposes exactly the hooks the rest of the system needs:

* ``execute(query)`` — run a statement (the Query Patroller calls this when
  a blocked agent is released; bypassing clients call it directly);
* ``add_completion_listener`` — the Monitor and metric collectors subscribe
  to statement completions;
* ``snapshot_monitor`` — the substrate for OLTP response-time sampling.

Execution timing: a query's ``start_time`` is when it gets an agent and its
first phase enters service; ``finish_time`` is when its last phase leaves
service.  Contention stretches phases through the PS pools and the overload
efficiency factor — no latency is ever synthesised outside the resource
model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import SimulationConfig
from repro.dbms.agent import AgentPool
from repro.dbms.optimizer import CostEstimator
from repro.dbms.overload import OverloadModel
from repro.dbms.query import CPU, IO, Query, QueryState
from repro.dbms.snapshot import SnapshotMonitor
from repro.errors import SimulationError
from repro.runtime.protocols import AdmissionGate, TimerService
from repro.sim.resources import ProcessorSharingResource, PSJob
from repro.sim.rng import RandomStreams

CompletionListener = Callable[[Query], None]
StartListener = Callable[[Query], None]


class DatabaseEngine:
    """DB2-like execution engine over simulated hardware."""

    def __init__(
        self,
        sim: TimerService,
        config: SimulationConfig,
        rng: RandomStreams,
    ) -> None:
        config.validate()
        self.sim = sim
        self.config = config
        self.rng = rng
        resources = config.resources
        self.cpu = ProcessorSharingResource(
            sim, "cpu", resources.cpu_servers, resources.cpu_speed
        )
        self.disk = ProcessorSharingResource(
            sim, "disk", resources.disk_servers, resources.disk_speed
        )
        self._pools: Dict[str, ProcessorSharingResource] = {CPU: self.cpu, IO: self.disk}
        self.agents = AgentPool(config.agents)
        self.overload = OverloadModel(config.overload, [self.cpu, self.disk])
        self.snapshot_monitor = SnapshotMonitor()
        self.estimator = CostEstimator(config.optimizer, rng)
        self._listeners: List[CompletionListener] = []
        self._start_listeners: List[StartListener] = []
        self._executing: Dict[int, Query] = {}
        self._completed = 0
        self._admission_gate: Optional[AdmissionGate] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def executing_queries(self) -> int:
        """Statements currently holding an agent and consuming resources."""
        return len(self._executing)

    @property
    def completed_queries(self) -> int:
        """Total statements completed since the start of the run."""
        return self._completed

    def executing_snapshot(self) -> List[Query]:
        """The statements currently executing (a copy).

        Read-only view for the validation harness, which checks the
        engine's running set against the dispatcher's in-flight accounting.
        """
        return list(self._executing.values())

    def executing_cost(self, class_name: Optional[str] = None) -> float:
        """Summed *estimated* cost of executing statements (optionally of
        one class) — the quantity cost-limit policies reason about."""
        total = 0.0
        for query in self._executing.values():
            if class_name is None or query.class_name == class_name:
                total += query.estimated_cost
        return total

    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Subscribe to statement completions (fired in subscription order)."""
        self._listeners.append(listener)

    def add_start_listener(self, listener: StartListener) -> None:
        """Subscribe to execution starts (agent acquired, first phase in).

        The Query Tracer uses this to open ``execute`` spans for statements
        that bypass interception and therefore emit no patroller events.
        """
        self._start_listeners.append(listener)

    def set_admission_gate(self, gate: Optional[AdmissionGate]) -> None:
        """Install an in-engine admission gate (None to remove).

        This is the hook for the paper's future-work direction of
        implementing workload control *inside* the DBMS (Section 5): unlike
        Query Patroller interception, the gate sees every statement —
        including sub-second OLTP — with zero added latency or CPU.
        """
        self._admission_gate = gate

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: Query) -> None:
        """Admit ``query`` for execution (possibly waiting for an agent)."""
        if query.state in (QueryState.EXECUTING, QueryState.COMPLETED):
            raise SimulationError(
                "query {} executed twice".format(query.query_id)
            )
        if self._admission_gate is not None and not self._admission_gate.admit(query):
            # The gate took ownership; it calls admit_released() later.
            return
        if query.release_time is None:
            query.release_time = self.sim.now
        self.agents.acquire(query, self._start)

    def admit_released(self, query: Query) -> None:
        """Admit a statement previously held by the admission gate."""
        if query.release_time is None:
            query.release_time = self.sim.now
        self.agents.acquire(query, self._start)

    def _start(self, query: Query) -> None:
        query.state = QueryState.EXECUTING
        query.start_time = self.sim.now
        self._executing[query.query_id] = query
        self.overload.admit(query.true_cost)
        for listener in self._start_listeners:
            listener(query)
        self._run_next_phase(query)

    def _run_next_phase(self, query: Query) -> None:
        # One `advance` closure drives every phase of the query: it is the
        # completion callback of each phase's job, so the per-phase lambda
        # allocation (and the per-phase parallelism re-read) of the old
        # shape disappears from the hottest path in the engine.
        pools = self._pools
        degree = max(1, int(query.parallelism))

        def advance(_job: Optional[PSJob] = None) -> None:
            phase = query.next_phase()
            if phase is None:
                self._finish(query)
                return
            pool = pools[phase.kind]
            if degree == 1:
                # The pool name is label enough: per-query formatted job
                # names cost a format call per phase, and the query is
                # recoverable from the completion callback.
                pool.submit(PSJob(name=phase.kind, demand=phase.demand, on_complete=advance))
                return
            # Intra-query parallelism: the phase fans out into `degree`
            # sub-jobs and the next phase starts when the last one finishes.
            barrier = {"remaining": degree}

            def _sub_done(_sub: PSJob) -> None:
                barrier["remaining"] -= 1
                if barrier["remaining"] == 0:
                    advance()

            share = phase.demand / degree
            for worker in range(degree):
                pool.submit(
                    PSJob(
                        name="q{}:{}:{}".format(query.query_id, phase.kind, worker),
                        demand=share,
                        on_complete=_sub_done,
                    )
                )

        advance()

    def _finish(self, query: Query) -> None:
        query.state = QueryState.COMPLETED
        query.finish_time = self.sim.now
        del self._executing[query.query_id]
        self.overload.retire(query.true_cost)
        self._completed += 1
        self.snapshot_monitor.record_completion(query)
        self.agents.release()
        if query.on_complete is not None:
            query.on_complete(query)
        for listener in self._listeners:
            listener(query)
