"""DB2 snapshot monitor.

Section 3.3: "The DB2 UDB snapshot monitor records the execution time of the
most recently finished query for a client.  We, therefore, can take snapshots
at fixed intervals ... to get samples of response times of OLTP queries from
all the clients and average them."

The substrate keeps, per client connection, the most recently completed
statement's timing; :meth:`SnapshotMonitor.snapshot` returns those samples so
the Monitor layer can average them.  A sample is returned at most once per
completion only if the caller asks for fresh samples — matching the real
monitor, repeated snapshots between completions re-read the same last
statement, which is why the sampling interval must not be too large
(staleness) nor too small (overhead).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.dbms.query import Query


class SnapshotSample(NamedTuple):
    """Timing of the most recently finished statement on one connection."""

    client_id: str
    class_name: str
    finish_time: float
    execution_time: float
    response_time: float


class SnapshotMonitor:
    """Tracks the last completed statement per client connection."""

    def __init__(self) -> None:
        self._last: Dict[str, SnapshotSample] = {}
        self._completions = 0

    @property
    def completions_seen(self) -> int:
        """Total statement completions recorded."""
        return self._completions

    @property
    def connections(self) -> int:
        """Client connections with at least one completed statement."""
        return len(self._last)

    def record_completion(self, query: Query) -> None:
        """Called by the engine whenever a statement completes."""
        self._completions += 1
        self._last[query.client_id] = SnapshotSample(
            client_id=query.client_id,
            class_name=query.class_name,
            finish_time=query.finish_time if query.finish_time is not None else 0.0,
            execution_time=query.execution_time,
            response_time=query.response_time,
        )

    def snapshot(
        self,
        class_name: Optional[str] = None,
        since: Optional[float] = None,
    ) -> List[SnapshotSample]:
        """Return the last sample per connection.

        Parameters
        ----------
        class_name:
            Restrict to connections whose last statement belonged to this
            service class.
        since:
            Drop samples whose statement finished before this time (stale
            connections that have gone idle).
        """
        samples = []
        for sample in self._last.values():
            if class_name is not None and sample.class_name != class_name:
                continue
            if since is not None and sample.finish_time < since:
                continue
            samples.append(sample)
        return samples

    def average_response_time(
        self,
        class_name: Optional[str] = None,
        since: Optional[float] = None,
    ) -> Optional[float]:
        """Mean response time across connections, or None with no samples."""
        samples = self.snapshot(class_name=class_name, since=since)
        if not samples:
            return None
        return sum(s.response_time for s in samples) / len(samples)
