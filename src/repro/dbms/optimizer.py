"""The query optimizer's cost estimator.

DB2 prices every statement in *timerons*, "a generic cost measure used by the
DB2 UDB optimizer to express the combined resource usage to execute a query"
(Section 2).  The Query Scheduler trusts these estimates for every admission
decision, and the paper closes by noting that "cost-based resource allocation
is somehow inaccurate" — so the estimator here computes the exact cost from a
query's true demands and then perturbs it with multiplicative lognormal noise
whose magnitude is configurable (and ablatable; see
``benchmarks/bench_ablation_noise.py``).
"""

from __future__ import annotations

from repro.config import OptimizerConfig
from repro.sim.rng import RandomStreams


class CostEstimator:
    """Prices queries in timerons with configurable estimation error.

    Parameters
    ----------
    config:
        Timeron rates and noise magnitude.
    rng:
        Random streams; the estimator draws from stream ``"optimizer"``.
    """

    def __init__(self, config: OptimizerConfig, rng: RandomStreams) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        self._estimates = 0

    @property
    def estimates_made(self) -> int:
        """Number of estimates produced so far."""
        return self._estimates

    def true_cost(self, cpu_demand: float, io_demand: float) -> float:
        """Exact timeron cost of the given demands (no noise)."""
        return self.config.true_cost(cpu_demand, io_demand)

    def estimate(self, cpu_demand: float, io_demand: float) -> float:
        """Noisy timeron estimate, as the optimizer would report it.

        The error is multiplicative lognormal with median 1 so estimates are
        unbiased in the median and never negative.
        """
        self._estimates += 1
        exact = self.true_cost(cpu_demand, io_demand)
        factor = self._rng.lognormal_factor("optimizer", self.config.noise_sigma)
        return exact * factor
