"""DB2-style agent pool.

In DB2 UDB every active statement is served by an *agent*; Query Patroller
blocks a query by blocking its agent and releases it through an unblocking
API (Section 2).  The pool here enforces a maximum number of concurrently
active agents; statements arriving when the pool is exhausted wait FIFO.
With the default configuration the pool is sized so it never binds — the
paper's control acts through cost limits, not agents — but it exists so the
substrate degrades the way a real server would if driven without any
admission control at all.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.config import AgentConfig
from repro.dbms.query import Query
from repro.errors import SimulationError


class AgentPool:
    """Bounded pool of statement agents with FIFO overflow queueing."""

    def __init__(self, config: AgentConfig) -> None:
        config.validate()
        self.config = config
        self._active = 0
        self._waiting: Deque[Tuple[Query, Callable[[Query], None]]] = deque()
        self._peak_active = 0
        self._total_waits = 0

    @property
    def active(self) -> int:
        """Agents currently serving statements."""
        return self._active

    @property
    def waiting(self) -> int:
        """Statements queued for an agent."""
        return len(self._waiting)

    @property
    def peak_active(self) -> int:
        """High-water mark of concurrently active agents."""
        return self._peak_active

    @property
    def total_waits(self) -> int:
        """Statements that ever had to wait for an agent."""
        return self._total_waits

    def acquire(self, query: Query, on_granted: Callable[[Query], None]) -> bool:
        """Request an agent for ``query``.

        If one is free, ``on_granted`` is invoked synchronously and True is
        returned; otherwise the request queues and False is returned —
        ``on_granted`` will fire when an agent frees up.
        """
        if self._active < self.config.max_agents:
            self._active += 1
            if self._active > self._peak_active:
                self._peak_active = self._active
            on_granted(query)
            return True
        self._total_waits += 1
        self._waiting.append((query, on_granted))
        return False

    def release(self) -> Optional[Query]:
        """Return an agent to the pool, handing it to a waiter if any.

        Returns the query that was granted the freed agent, or None.
        """
        if self._active <= 0:
            raise SimulationError("AgentPool.release() with no active agents")
        if self._waiting:
            query, on_granted = self._waiting.popleft()
            # The agent moves directly from the finisher to the waiter, so
            # the active count is unchanged.
            on_granted(query)
            return query
        self._active -= 1
        return None
