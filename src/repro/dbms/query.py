"""Query objects and their lifecycle.

A :class:`Query` is one SQL statement as seen by the control framework: it
carries its true resource demands (what execution will actually consume), the
optimizer's timeron estimate (what scheduling decisions are based on), and
the timestamps from which the paper's two performance metrics derive:

* ``response_time  = finish_time - submit_time`` — client-perceived latency,
  including any time held by the workload adaptation mechanism;
* ``execution_time = finish_time - release_time`` — time actually running in
  the DBMS;
* ``velocity = execution_time / response_time`` ∈ (0, 1] — the paper's OLAP
  goal metric (Section 3.1).
"""

from __future__ import annotations

import enum
from typing import List, NamedTuple, Optional, Tuple

from repro.errors import SimulationError

#: Resource kinds a phase can execute on.
CPU = "cpu"
IO = "io"


class Phase(NamedTuple):
    """One stage of query execution on a single resource pool."""

    kind: str  # CPU or IO
    demand: float  # seconds-at-full-speed


class QueryState(enum.Enum):
    """Lifecycle of a query through interception, queueing and execution."""

    CREATED = "created"
    INTERCEPTED = "intercepted"  # recorded by Query Patroller, agent blocked
    QUEUED = "queued"  # sitting in a service-class queue
    RELEASED = "released"  # unblocked, admitted to the engine
    EXECUTING = "executing"
    COMPLETED = "completed"
    CANCELLED = "cancelled"  # abandoned while still queued (never ran)
    REJECTED = "rejected"  # refused by policy (e.g. over QP's max cost)


class Query:
    """One statement flowing through the system.

    Parameters
    ----------
    query_id:
        Unique monotonically increasing id.
    class_name:
        Service class this query belongs to (e.g. ``"class1"``).
    client_id:
        Submitting client connection (used by the snapshot monitor).
    template:
        Name of the workload template that generated the query.
    kind:
        ``"olap"`` or ``"oltp"``; drives metric selection upstream.
    phases:
        Ordered CPU/IO stages with true demands.
    true_cost:
        Exact timeron cost (what execution consumes against the overload
        model).
    estimated_cost:
        The optimizer's (possibly noisy) timeron estimate — the number every
        scheduling decision sees.
    """

    __slots__ = (
        "query_id",
        "class_name",
        "client_id",
        "template",
        "kind",
        "phases",
        "true_cost",
        "estimated_cost",
        "state",
        "submit_time",
        "intercept_time",
        "queue_time",
        "release_time",
        "start_time",
        "finish_time",
        "priority",
        "on_complete",
        "parallelism",
        "_phase_index",
    )

    def __init__(
        self,
        query_id: int,
        class_name: str,
        client_id: str,
        template: str,
        kind: str,
        phases: Tuple[Phase, ...],
        true_cost: float,
        estimated_cost: float,
    ) -> None:
        if not phases:
            raise SimulationError("query {} has no phases".format(query_id))
        self.query_id = query_id
        self.class_name = class_name
        self.client_id = client_id
        self.template = template
        self.kind = kind
        self.phases: Tuple[Phase, ...] = tuple(phases)
        self.true_cost = float(true_cost)
        self.estimated_cost = float(estimated_cost)
        self.state = QueryState.CREATED
        self.submit_time: Optional[float] = None
        self.intercept_time: Optional[float] = None
        self.queue_time: Optional[float] = None
        self.release_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.priority = 0
        #: Optional per-query completion callback (set by the submitting
        #: client); fired by the engine before its global listeners.
        self.on_complete = None
        #: Intra-query degree of parallelism (sub-jobs per phase).
        self.parallelism = 1
        self._phase_index = 0

    # ------------------------------------------------------------------
    # Demand decomposition
    # ------------------------------------------------------------------
    @property
    def cpu_demand(self) -> float:
        """Total CPU seconds-at-full-speed across phases."""
        return sum(p.demand for p in self.phases if p.kind == CPU)

    @property
    def io_demand(self) -> float:
        """Total IO seconds-at-full-speed across phases."""
        return sum(p.demand for p in self.phases if p.kind == IO)

    def next_phase(self) -> Optional[Phase]:
        """Pop the next phase to execute; None when the query is done."""
        if self._phase_index >= len(self.phases):
            return None
        phase = self.phases[self._phase_index]
        self._phase_index += 1
        return phase

    @property
    def phases_remaining(self) -> int:
        """Number of phases not yet dispatched to a resource pool."""
        return len(self.phases) - self._phase_index

    # ------------------------------------------------------------------
    # Metrics (valid once COMPLETED)
    # ------------------------------------------------------------------
    @property
    def response_time(self) -> float:
        """Client-perceived latency, including scheduler hold time."""
        if self.finish_time is None or self.submit_time is None:
            raise SimulationError(
                "query {} response_time read before completion".format(self.query_id)
            )
        return self.finish_time - self.submit_time

    @property
    def execution_time(self) -> float:
        """Time spent running inside the DBMS (release to finish)."""
        if self.finish_time is None:
            raise SimulationError(
                "query {} execution_time read before completion".format(self.query_id)
            )
        released = self.release_time if self.release_time is not None else self.submit_time
        if released is None:
            raise SimulationError(
                "query {} was never submitted".format(self.query_id)
            )
        return self.finish_time - released

    @property
    def velocity(self) -> float:
        """``execution_time / response_time`` ∈ (0, 1] (Section 3.1)."""
        response = self.response_time
        if response <= 0:
            return 1.0
        return min(1.0, self.execution_time / response)

    @property
    def wait_time(self) -> float:
        """Time held by the adaptation mechanism before release."""
        return self.response_time - self.execution_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Query(#{}, {}, {}, cost={:.0f}, {})".format(
            self.query_id,
            self.class_name,
            self.template,
            self.estimated_cost,
            self.state.value,
        )


def make_phases(
    cpu_demand: float, io_demand: float, rounds: int
) -> Tuple[Phase, ...]:
    """Split total CPU/IO demand into ``rounds`` alternating CPU→IO phases.

    A round with zero demand on one side omits that phase, so OLTP queries
    (1 round) become a CPU phase followed by an IO phase, while OLAP queries
    interleave several CPU bursts with IO scans — which is what couples their
    CPU consumption to OLTP contention throughout their run rather than in
    one lump.
    """
    if rounds < 1:
        raise SimulationError("make_phases needs rounds >= 1")
    if cpu_demand < 0 or io_demand < 0:
        raise SimulationError("demands must be non-negative")
    phases: List[Phase] = []
    cpu_slice = cpu_demand / rounds
    io_slice = io_demand / rounds
    for _ in range(rounds):
        if cpu_slice > 0:
            phases.append(Phase(CPU, cpu_slice))
        if io_slice > 0:
            phases.append(Phase(IO, io_slice))
    if not phases:
        # Degenerate zero-demand query: keep one empty CPU phase so the
        # lifecycle still transits the engine.
        phases.append(Phase(CPU, 0.0))
    return tuple(phases)
