"""Simulated DB2-like database engine (substrate).

This subpackage stands in for IBM DB2 UDB v8.2 on the paper's xSeries 240
testbed.  It provides exactly the surface the Query Scheduler framework
observes and actuates: statement execution on shared CPU/disk pools with
contention and a thrashing knee, an agent pool, an optimizer that prices
queries in timerons (with estimation error), and a snapshot monitor exposing
the most recently completed statement per client connection.
"""

from repro.dbms.agent import AgentPool
from repro.dbms.engine import DatabaseEngine
from repro.dbms.optimizer import CostEstimator
from repro.dbms.overload import OverloadModel
from repro.dbms.query import Phase, Query, QueryState
from repro.dbms.snapshot import SnapshotMonitor, SnapshotSample

__all__ = [
    "AgentPool",
    "DatabaseEngine",
    "CostEstimator",
    "OverloadModel",
    "Phase",
    "Query",
    "QueryState",
    "SnapshotMonitor",
    "SnapshotSample",
]
