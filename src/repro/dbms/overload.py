"""Server overload (thrashing) model.

Section 2 of the paper: the system cost limit is "determined experimentally
by plotting the curve of the throughput versus the system cost limit to
ensure the system running in a healthy state or under-saturated".  That
experiment only makes sense if pushing total concurrent cost past some knee
*hurts* throughput — on real hardware via buffer-pool churn, lock escalation
and memory pressure.  We model the aggregate effect as a single efficiency
multiplier applied to both resource pools:

    efficiency(cost) = 1                                   cost <= knee
                       1 / (1 + beta * (cost - knee)/knee) cost >  knee

where ``cost`` is the summed *true* timeron cost of all executing queries.
Below the knee the server behaves like a plain processor-sharing system
(hence the linear Figure 2 regime); above it, every additional admitted
timeron slows everyone down, producing the throughput knee of the
calibration experiment.
"""

from __future__ import annotations

from typing import List

from repro.config import OverloadConfig
from repro.sim.resources import ProcessorSharingResource


class OverloadModel:
    """Tracks total in-flight cost and keeps pool efficiencies in sync."""

    def __init__(
        self,
        config: OverloadConfig,
        resources: List[ProcessorSharingResource],
    ) -> None:
        config.validate()
        self.config = config
        self._resources = list(resources)
        self._total_cost = 0.0
        self._peak_cost = 0.0
        self._knee = float(config.knee_cost)
        self._last_efficiency = 1.0

    @property
    def total_cost(self) -> float:
        """Summed true timeron cost of all currently executing queries."""
        return self._total_cost

    @property
    def peak_cost(self) -> float:
        """Largest total cost observed so far."""
        return self._peak_cost

    @property
    def efficiency(self) -> float:
        """Current efficiency multiplier."""
        return self.config.efficiency(self._total_cost)

    def admit(self, cost: float) -> None:
        """Account for a query entering execution."""
        total = self._total_cost + cost
        self._total_cost = total
        if total > self._peak_cost:
            self._peak_cost = total
        # Fast path: below the knee with efficiency already at 1.0 there
        # is nothing to propagate (the common healthy-state regime).
        if total <= self._knee and self._last_efficiency == 1.0:
            return
        self._apply()

    def retire(self, cost: float) -> None:
        """Account for a query finishing execution."""
        total = self._total_cost - cost
        if total < 0:
            # Float drift only; never let efficiency exceed 1 via negatives.
            total = 0.0
        self._total_cost = total
        if total <= self._knee and self._last_efficiency == 1.0:
            return
        self._apply()

    def _apply(self) -> None:
        efficiency = self.efficiency
        self._last_efficiency = efficiency
        for resource in self._resources:
            resource.set_efficiency(efficiency)
