"""Configuration tree for the whole reproduction.

Every tunable of the simulated database server, the Query Patroller
substrate, the workloads, and the Query Scheduler controller lives in a
frozen dataclass here.  The defaults reproduce the paper's setup (scaled in
wall-clock time; see DESIGN.md §4): an IBM xSeries 240-like server (2 CPUs,
17 disks), a 30,000-timeron system cost limit, TPC-H/TPC-C-like workloads,
and the three service classes of Section 4.

Units
-----
* Time is in seconds of simulated wall clock.
* Service demand is in seconds-at-full-speed on the relevant resource pool.
* Cost is in *timerons*, the DB2 optimizer's abstract cost unit; the
  optimizer config defines how demand maps to timerons.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResourceConfig:
    """The database server's hardware, per the paper's testbed."""

    cpu_servers: int = 2
    disk_servers: int = 17
    cpu_speed: float = 1.0
    disk_speed: float = 1.0

    def validate(self) -> None:
        if self.cpu_servers < 1 or self.disk_servers < 1:
            raise ConfigurationError("resource pools need at least one server")
        if self.cpu_speed <= 0 or self.disk_speed <= 0:
            raise ConfigurationError("resource speeds must be positive")


@dataclass(frozen=True)
class OverloadConfig:
    """Thrashing model: efficiency knee past a saturation cost.

    Efficiency is ``1 / (1 + beta * max(0, cost - knee) / knee)`` where
    ``cost`` is the total true timeron cost of all queries in flight.  This
    produces the throughput-vs-cost-limit knee the paper uses to pick the
    system cost limit experimentally (Section 2).
    """

    knee_cost: float = 26_000.0
    beta: float = 1.5

    def validate(self) -> None:
        if self.knee_cost <= 0:
            raise ConfigurationError("overload knee_cost must be positive")
        if self.beta < 0:
            raise ConfigurationError("overload beta must be non-negative")

    def efficiency(self, total_cost: float) -> float:
        """Efficiency multiplier for the given total in-flight cost."""
        if total_cost <= self.knee_cost:
            return 1.0
        excess = (total_cost - self.knee_cost) / self.knee_cost
        return 1.0 / (1.0 + self.beta * excess)


@dataclass(frozen=True)
class OptimizerConfig:
    """Cost estimator: true demand -> timerons, with estimation noise.

    ``noise_sigma`` is the standard deviation of the lognormal multiplicative
    error on the estimate ("cost-based resource allocation is somehow
    inaccurate", Section 5); 0 disables noise.
    """

    cpu_timerons_per_second: float = 600.0
    io_timerons_per_second: float = 240.0
    base_cost: float = 25.0
    noise_sigma: float = 0.10

    def validate(self) -> None:
        if self.cpu_timerons_per_second <= 0 or self.io_timerons_per_second <= 0:
            raise ConfigurationError("timeron rates must be positive")
        if self.base_cost < 0:
            raise ConfigurationError("base_cost must be non-negative")
        if self.noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be non-negative")

    def true_cost(self, cpu_demand: float, io_demand: float) -> float:
        """Exact timeron cost of a query with the given demands."""
        return (
            self.base_cost
            + self.cpu_timerons_per_second * cpu_demand
            + self.io_timerons_per_second * io_demand
        )


@dataclass(frozen=True)
class AgentConfig:
    """DB2-style agent pool: one agent per active statement."""

    max_agents: int = 400

    def validate(self) -> None:
        if self.max_agents < 1:
            raise ConfigurationError("max_agents must be >= 1")


@dataclass(frozen=True)
class PatrollerConfig:
    """Query Patroller interception costs.

    ``interception_latency`` is wall-clock added to every intercepted query
    before it becomes eligible for release; ``release_latency`` is added when
    it is released; ``overhead_cpu_demand`` is extra CPU burned on the server
    per intercepted query.  These are what make direct OLTP interception
    impractical (Section 3): they dwarf a sub-second transaction.
    """

    interception_latency: float = 0.20
    release_latency: float = 0.05
    overhead_cpu_demand: float = 0.03

    def validate(self) -> None:
        if min(
            self.interception_latency,
            self.release_latency,
            self.overhead_cpu_demand,
        ) < 0:
            raise ConfigurationError("patroller overheads must be non-negative")


@dataclass(frozen=True)
class MonitorConfig:
    """Monitor polling and OLTP snapshot sampling (Section 3.3)."""

    snapshot_interval: float = 10.0
    velocity_window: float = 120.0  # seconds of OLAP completions per estimate
    response_time_window: float = 60.0  # seconds of OLTP snapshots per estimate
    #: How long a class's last measurement stays usable as a fallback once
    #: its sample windows run dry.  Past this age the Monitor reports None
    #: instead of feeding the solver an arbitrarily stale value.
    max_measurement_age: float = 300.0

    def validate(self) -> None:
        if self.snapshot_interval <= 0:
            raise ConfigurationError("snapshot_interval must be positive")
        if self.velocity_window <= 0:
            raise ConfigurationError("velocity_window must be positive")
        if self.response_time_window <= 0:
            raise ConfigurationError("response_time_window must be positive")
        if self.max_measurement_age <= 0:
            raise ConfigurationError("max_measurement_age must be positive")


@dataclass(frozen=True)
class PlannerConfig:
    """Control loop of the Scheduling Planner / Performance Solver."""

    control_interval: float = 60.0
    grid_timerons: float = 1_000.0
    min_class_limit: float = 1_000.0
    utility: str = "piecewise"  # piecewise | sigmoid | step
    #: Plan construction strategy: "utility" = the paper's optimization;
    #: "deficit" = the importance-x-deficit heuristic (ablation).
    allocator: str = "utility"
    #: Within-class release ordering: "fifo" (the paper), "sjf"
    #: (cheapest estimated cost first) or "aging" (cost discounted by wait).
    queue_discipline: str = "fifo"
    surplus_slope: float = 0.05
    #: Base of the exponential importance weighting in the utilities (1 =
    #: plain linear importance; see repro.core.utility.effective_weight).
    importance_base: float = 4.0
    #: Slope of the OLTP linear model (seconds of OLTP response time per
    #: timeron of OLTP class limit).  The paper obtains it offline by linear
    #: regression on the Figure 2 experiment; this default matches the
    #: calibration sweep on the default simulated server.
    oltp_slope_prior: float = -4.2e-6
    oltp_slope_weight: float = 50.0
    regression_forgetting: float = 0.97
    #: Fraction of the OLTP response-time goal the solver actually aims at
    #: (< 1 leaves control headroom so measurement noise does not park the
    #: class permanently just above its SLO).
    oltp_target_margin: float = 0.92
    #: When True, the slope is additionally refined online from
    #: (Δ limit, Δ response time) pairs each control interval — an extension
    #: beyond the paper (which uses the offline constant).  Online pairs are
    #: lag-corrupted, so the estimate is clamped near the prior.
    online_regression: bool = False
    #: Performance-model spec for the utility solver: "paper" (the
    #: Section 3.2 analytic pair, the default), "learned" (online RLS
    #: residual model), "learned:<path>" (weights trained by
    #: ``repro train``) or "oracle" (last-value persistence baseline).
    model: str = "paper"

    def validate(self) -> None:
        if self.control_interval <= 0:
            raise ConfigurationError("control_interval must be positive")
        if self.grid_timerons <= 0:
            raise ConfigurationError("grid_timerons must be positive")
        if self.min_class_limit < 0:
            raise ConfigurationError("min_class_limit must be non-negative")
        if self.utility not in ("piecewise", "sigmoid", "step"):
            raise ConfigurationError("unknown utility family {!r}".format(self.utility))
        if self.allocator not in ("utility", "deficit"):
            raise ConfigurationError("unknown allocator {!r}".format(self.allocator))
        if self.queue_discipline not in ("fifo", "sjf", "aging"):
            raise ConfigurationError(
                "unknown queue discipline {!r}".format(self.queue_discipline)
            )
        if self.importance_base < 1:
            raise ConfigurationError("importance_base must be >= 1")
        if not 0 < self.oltp_target_margin <= 1:
            raise ConfigurationError("oltp_target_margin must be in (0, 1]")
        if not 0 < self.regression_forgetting <= 1:
            raise ConfigurationError("regression_forgetting must be in (0, 1]")
        # Lazy import: repro.core.modeling imports repro.errors only, but
        # going through repro.config at module load would be a cycle.
        from repro.core.modeling.registry import parse_model_spec

        parse_model_spec(self.model)


@dataclass(frozen=True)
class WorkloadScaleConfig:
    """Time scaling of the paper's 18 x 8-minute run (DESIGN.md §4)."""

    period_seconds: float = 240.0
    num_periods: int = 18
    think_time: float = 0.0

    def validate(self) -> None:
        if self.period_seconds <= 0:
            raise ConfigurationError("period_seconds must be positive")
        if self.num_periods < 1:
            raise ConfigurationError("num_periods must be >= 1")
        if self.think_time < 0:
            raise ConfigurationError("think_time must be non-negative")

    @property
    def horizon(self) -> float:
        """Total simulated run length in seconds."""
        return self.period_seconds * self.num_periods


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level configuration for one simulated experiment."""

    seed: int = 7
    system_cost_limit: float = 30_000.0
    resources: ResourceConfig = field(default_factory=ResourceConfig)
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    agents: AgentConfig = field(default_factory=AgentConfig)
    patroller: PatrollerConfig = field(default_factory=PatrollerConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    scale: WorkloadScaleConfig = field(default_factory=WorkloadScaleConfig)

    def validate(self) -> "SimulationConfig":
        """Validate the whole tree; returns self for chaining."""
        if self.system_cost_limit <= 0:
            raise ConfigurationError("system_cost_limit must be positive")
        self.resources.validate()
        self.overload.validate()
        self.optimizer.validate()
        self.agents.validate()
        self.patroller.validate()
        self.monitor.validate()
        self.planner.validate()
        self.scale.validate()
        return self

    def with_updates(self, **kwargs) -> "SimulationConfig":
        """Return a copy with top-level fields replaced (and validated)."""
        return replace(self, **kwargs).validate()


#: The three service classes of Section 4, as (name, kind, goal, importance).
#: Class 1 and 2 are TPC-H (velocity goals 0.4 / 0.6); Class 3 is TPC-C with
#: a 0.25 s average-response-time goal and the highest importance.
PAPER_CLASSES: Tuple[Tuple[str, str, float, int], ...] = (
    ("class1", "olap", 0.40, 1),
    ("class2", "olap", 0.60, 2),
    ("class3", "oltp", 0.25, 3),
)


def default_config(**overrides) -> SimulationConfig:
    """The calibrated default configuration used by tests and benches."""
    return SimulationConfig(**overrides).validate()
