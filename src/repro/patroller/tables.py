"""Query Patroller control tables.

DB2 QP records every intercepted query in its control tables; the paper's
Monitor "collects the information about the query from the DB2 QP control
tables, including the query identification, query cost and query execution
information" (Section 2).  :class:`ControlTables` is that store: an
append-ordered log of :class:`QueryRecord` rows with status transitions and a
cursor-based ``fetch_since`` the Monitor uses to poll for new arrivals
without re-reading history.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import PatrollerError

#: Status values a control-table record moves through.
STATUS_QUEUED = "queued"
STATUS_RELEASED = "released"
STATUS_COMPLETED = "completed"
STATUS_CANCELLED = "cancelled"
STATUS_REJECTED = "rejected"


class QueryRecord:
    """One row of the intercepted-queries control table."""

    __slots__ = (
        "seq",
        "query_id",
        "class_name",
        "client_id",
        "template",
        "kind",
        "estimated_cost",
        "submit_time",
        "intercept_time",
        "release_time",
        "finish_time",
        "status",
    )

    def __init__(
        self,
        seq: int,
        query_id: int,
        class_name: str,
        client_id: str,
        template: str,
        kind: str,
        estimated_cost: float,
        submit_time: float,
        intercept_time: float,
    ) -> None:
        self.seq = seq
        self.query_id = query_id
        self.class_name = class_name
        self.client_id = client_id
        self.template = template
        self.kind = kind
        self.estimated_cost = estimated_cost
        self.submit_time = submit_time
        self.intercept_time = intercept_time
        self.release_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.status = STATUS_QUEUED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "QueryRecord(#{}, {}, cost={:.0f}, {})".format(
            self.query_id, self.class_name, self.estimated_cost, self.status
        )


class ControlTables:
    """Append-ordered store of intercepted-query records."""

    __slots__ = ("_by_id", "_log")

    def __init__(self) -> None:
        self._by_id: Dict[int, QueryRecord] = {}
        self._log: List[QueryRecord] = []

    def __len__(self) -> int:
        return len(self._log)

    def record_interception(
        self,
        query_id: int,
        class_name: str,
        client_id: str,
        template: str,
        kind: str,
        estimated_cost: float,
        submit_time: float,
        intercept_time: float,
    ) -> QueryRecord:
        """Insert the row for a freshly intercepted query."""
        if query_id in self._by_id:
            raise PatrollerError(
                "query {} intercepted twice".format(query_id)
            )
        record = QueryRecord(
            seq=len(self._log),
            query_id=query_id,
            class_name=class_name,
            client_id=client_id,
            template=template,
            kind=kind,
            estimated_cost=estimated_cost,
            submit_time=submit_time,
            intercept_time=intercept_time,
        )
        self._by_id[query_id] = record
        self._log.append(record)
        return record

    def get(self, query_id: int) -> QueryRecord:
        """Look up a record; raises PatrollerError if absent."""
        record = self._by_id.get(query_id)
        if record is None:
            raise PatrollerError("no control-table record for query {}".format(query_id))
        return record

    def find(self, query_id: int) -> Optional[QueryRecord]:
        """Look up a record, or None if the query was never intercepted.

        The non-raising twin of :meth:`get`: completion hooks probe the
        tables for *every* statement, and most statements (the bypassing
        OLTP traffic) have no row — an exception per probe is measurable
        at replication scale.
        """
        return self._by_id.get(query_id)

    def mark_released(self, query_id: int, time: float) -> None:
        """Transition a queued record to released."""
        record = self.get(query_id)
        if record.status != STATUS_QUEUED:
            raise PatrollerError(
                "query {} released from status {!r}".format(query_id, record.status)
            )
        record.status = STATUS_RELEASED
        record.release_time = time

    def mark_cancelled(self, query_id: int, time: float) -> None:
        """Transition a queued or released record to cancelled.

        Queued statements are the common case (user abandonment); a released
        statement can still be cancelled while its agent is being unblocked,
        i.e. before execution begins.
        """
        record = self.get(query_id)
        if record.status not in (STATUS_QUEUED, STATUS_RELEASED):
            raise PatrollerError(
                "query {} cancelled from status {!r}".format(query_id, record.status)
            )
        record.status = STATUS_CANCELLED
        record.finish_time = time

    def mark_rejected(self, query_id: int, time: float) -> None:
        """Transition a queued record to rejected (policy refused it)."""
        record = self.get(query_id)
        if record.status != STATUS_QUEUED:
            raise PatrollerError(
                "query {} rejected from status {!r}".format(query_id, record.status)
            )
        record.status = STATUS_REJECTED
        record.finish_time = time

    def mark_completed(self, query_id: int, time: float) -> None:
        """Transition a released record to completed."""
        record = self.get(query_id)
        if record.status != STATUS_RELEASED:
            raise PatrollerError(
                "query {} completed from status {!r}".format(query_id, record.status)
            )
        record.status = STATUS_COMPLETED
        record.finish_time = time

    def fetch_since(self, cursor: int) -> List[QueryRecord]:
        """Records appended at or after log sequence ``cursor``.

        The Monitor keeps ``cursor = last_seen + 1`` to poll incrementally.
        """
        if cursor < 0:
            cursor = 0
        return self._log[cursor:]

    def queued(self) -> List[QueryRecord]:
        """Records still waiting for release, in interception order."""
        return [r for r in self._log if r.status == STATUS_QUEUED]

    def counts_by_status(self) -> Dict[str, int]:
        """Histogram of record statuses (for reporting/tests)."""
        counts: Dict[str, int] = {}
        for record in self._log:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts
