"""DB2 Query Patroller-like interception layer (substrate).

Query Patroller "is configured to automatically intercept all queries,
record detailed query information, and block the DB2 agent responsible for
executing the query until an explicit operator command is received"
(Section 2).  This subpackage provides that surface: per-class interception
with realistic overheads, control tables the Monitor can poll, an
unblocking (release) API, and Query Patroller's own static control policy
(cost groups + submitter priorities) used as the paper's comparison baseline.
"""

from repro.patroller.patroller import QueryPatroller
from repro.patroller.policy import CostGroup, QPStaticPolicy, percentile_thresholds
from repro.patroller.tables import ControlTables, QueryRecord

__all__ = [
    "QueryPatroller",
    "ControlTables",
    "QueryRecord",
    "QPStaticPolicy",
    "CostGroup",
    "percentile_thresholds",
]
