"""Query Patroller's own (static) control policy.

Section 4.2.2: "Using the typical query control strategy of DB2 QP, the OLAP
queries are partitioned into three groups (large, medium and small) based on
the cost of the queries.  Queries whose cost is in the top 5% of the workload
are placed in the large group; queries whose cost is in the next 15% are
placed in the medium group and the remaining queries are placed in the small
query group."  Each group caps how many of its queries may run concurrently;
an optional global cost limit caps the total estimated cost in flight; and
submitter *priorities* order the waiting queue (Class 2 above Class 1 in the
paper's "priority control on" run).

Everything here is static: thresholds, group slots and priorities never react
to workload changes — which is exactly the weakness the Query Scheduler's
dynamic re-planning is shown to beat (Figures 5 vs 6).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime import ExecutionEngine
from repro.dbms.query import Query, QueryState
from repro.errors import ConfigurationError
from repro.patroller.patroller import QueryPatroller


@dataclass(frozen=True)
class CostGroup:
    """A QP query class: cost band ``(low, high]`` with a concurrency cap."""

    name: str
    low_cost: float
    high_cost: float
    max_concurrent: int

    def contains(self, cost: float) -> bool:
        """Whether a query of this estimated cost falls in the band."""
        return self.low_cost < cost <= self.high_cost

    def validate(self) -> None:
        if self.high_cost <= self.low_cost:
            raise ConfigurationError(
                "cost group {!r} has empty band [{}, {}]".format(
                    self.name, self.low_cost, self.high_cost
                )
            )
        if self.max_concurrent < 1:
            raise ConfigurationError(
                "cost group {!r} needs max_concurrent >= 1".format(self.name)
            )


def percentile_thresholds(
    costs: Sequence[float],
    large_fraction: float = 0.05,
    medium_fraction: float = 0.15,
) -> Tuple[float, float]:
    """Cost thresholds splitting a historical workload into QP's groups.

    Returns ``(small_upper, medium_upper)``: queries above ``medium_upper``
    are *large* (top ``large_fraction`` of the workload), queries in
    ``(small_upper, medium_upper]`` are *medium* (next ``medium_fraction``),
    and the rest are *small* — the 5%/15%/80% split of Section 4.2.2.
    """
    if not costs:
        raise ConfigurationError("percentile_thresholds needs historical costs")
    if large_fraction <= 0 or medium_fraction <= 0:
        raise ConfigurationError("group fractions must be positive")
    if large_fraction + medium_fraction >= 1:
        raise ConfigurationError("large + medium fractions must be < 1")
    arr = np.asarray(costs, dtype=float)
    medium_upper = float(np.quantile(arr, 1.0 - large_fraction))
    small_upper = float(np.quantile(arr, 1.0 - large_fraction - medium_fraction))
    return small_upper, medium_upper


def standard_groups(
    costs: Sequence[float],
    small_slots: int = 10,
    medium_slots: int = 3,
    large_slots: int = 1,
) -> List[CostGroup]:
    """Build the large/medium/small groups from a historical cost sample."""
    small_upper, medium_upper = percentile_thresholds(costs)
    return [
        CostGroup("small", 0.0, small_upper, small_slots),
        CostGroup("medium", small_upper, medium_upper, medium_slots),
        CostGroup("large", medium_upper, float("inf"), large_slots),
    ]


class QPStaticPolicy:
    """Static release policy: cost groups + priorities + global cost limit.

    Parameters
    ----------
    patroller:
        The interception layer; this policy installs itself as its release
        handler.
    engine:
        Used to observe completions.
    groups:
        Cost groups; pass an empty list for a single unlimited group (the
        paper's *no class control* baseline then reduces to the global cost
        limit alone).
    priorities:
        ``class_name -> priority`` (higher releases first).  Classes absent
        from the map get priority 0.  Pass ``None`` (or ``{}``) for the
        "priority control off" run.
    global_cost_limit:
        Cap on total estimated cost executing, across all intercepted
        classes; ``None`` disables it.
    max_query_cost:
        QP's hard rejection threshold: an intercepted query whose estimated
        cost exceeds this is *refused* (never queued, never run); ``None``
        disables rejection.
    """

    def __init__(
        self,
        patroller: QueryPatroller,
        engine: ExecutionEngine,
        groups: Optional[Sequence[CostGroup]] = None,
        priorities: Optional[Dict[str, int]] = None,
        global_cost_limit: Optional[float] = None,
        max_query_cost: Optional[float] = None,
    ) -> None:
        if max_query_cost is not None and max_query_cost <= 0:
            raise ConfigurationError("max_query_cost must be positive (or None)")
        self.patroller = patroller
        self.engine = engine
        self.groups: List[CostGroup] = list(groups or [])
        for group in self.groups:
            group.validate()
        self.priorities = dict(priorities or {})
        self.global_cost_limit = global_cost_limit
        self.max_query_cost = max_query_cost
        self._rejected = 0
        self._queue: List[Tuple[int, int, Query]] = []  # (-priority, seq, query)
        self._seq = 0
        self._in_flight_cost = 0.0
        self._in_flight_by_group: Dict[str, int] = {g.name: 0 for g in self.groups}
        self._group_of_query: Dict[int, Optional[str]] = {}
        self._released = 0
        patroller.set_release_handler(self.on_intercepted)
        engine.add_completion_listener(self.on_completed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Queries waiting for release."""
        return len(self._queue)

    @property
    def released(self) -> int:
        """Total queries this policy has released."""
        return self._released

    @property
    def in_flight_cost(self) -> float:
        """Estimated cost of policy-released queries still executing."""
        return self._in_flight_cost

    def group_for(self, cost: float) -> Optional[CostGroup]:
        """The cost group a query of this estimated cost belongs to."""
        for group in self.groups:
            if group.contains(cost):
                return group
        return None

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    @property
    def rejected(self) -> int:
        """Total queries refused by the max-cost threshold."""
        return self._rejected

    def on_intercepted(self, query: Query) -> None:
        """Release-handler hook: reject over-threshold, else enqueue."""
        if (
            self.max_query_cost is not None
            and query.estimated_cost > self.max_query_cost
        ):
            self._rejected += 1
            self.patroller.reject(query)
            return
        priority = self.priorities.get(query.class_name, 0)
        query.priority = priority
        heapq.heappush(self._queue, (-priority, self._seq, query))
        self._seq += 1
        self.try_release()

    def on_completed(self, query: Query) -> None:
        """Engine completion hook: free the query's slots, release more."""
        if query.query_id not in self._group_of_query:
            return  # bypassed QP (e.g. the OLTP class)
        group_name = self._group_of_query.pop(query.query_id)
        self._in_flight_cost -= query.estimated_cost
        if self._in_flight_cost < 0:
            self._in_flight_cost = 0.0
        if group_name is not None:
            self._in_flight_by_group[group_name] -= 1
        self.try_release()

    # ------------------------------------------------------------------
    # Release logic
    # ------------------------------------------------------------------
    def _eligible(self, query: Query) -> bool:
        group = self.group_for(query.estimated_cost)
        if group is not None:
            if self._in_flight_by_group[group.name] >= group.max_concurrent:
                return False
        if self.global_cost_limit is not None:
            over = self._in_flight_cost + query.estimated_cost > self.global_cost_limit
            # Starvation guard: a query costlier than the whole limit may
            # run alone rather than wait forever.
            if over and self._in_flight_cost > 0:
                return False
            if over and query.estimated_cost <= self.global_cost_limit:
                return False
        return True

    def try_release(self) -> int:
        """Release every currently eligible query, best priority first.

        Queries whose group or the global limit is full are skipped (no
        head-of-line blocking across groups), preserving priority order
        among the eligible.  Returns the number of queries released.
        """
        released = 0
        skipped: List[Tuple[int, int, Query]] = []
        while self._queue:
            entry = heapq.heappop(self._queue)
            query = entry[2]
            if query.state == QueryState.CANCELLED:
                continue  # abandoned while waiting; drop
            if not self._eligible(query):
                skipped.append(entry)
                continue
            group = self.group_for(query.estimated_cost)
            group_name = group.name if group is not None else None
            self._group_of_query[query.query_id] = group_name
            self._in_flight_cost += query.estimated_cost
            if group_name is not None:
                self._in_flight_by_group[group_name] += 1
            self._released += 1
            self.patroller.release(query)
            released += 1
        for entry in skipped:
            heapq.heappush(self._queue, entry)
        return released
