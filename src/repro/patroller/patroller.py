"""The Query Patroller interceptor.

Responsibilities, mirroring DB2 QP as the paper uses it (Section 2):

* **Interception** — queries of *enabled* classes are intercepted: after an
  interception latency their details land in the control tables, extra CPU
  overhead is charged to the statement, and the submitting agent blocks.
* **Bypass** — queries of classes QP is turned off for (the OLTP class in
  every experiment, Section 3) go straight to the engine with no overhead.
* **Release** — the unblocking API: ``release(query)`` lets a held query
  proceed into the engine after a small release latency.

Whoever performs workload control (the paper's Query Scheduler dispatcher,
or QP's own static policy) registers itself as the *release handler* and is
handed every intercepted query; it then decides when to call ``release``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.config import PatrollerConfig
from repro.dbms.query import CPU, Phase, Query, QueryState
from repro.errors import PatrollerError
from repro.patroller.tables import ControlTables
from repro.runtime import ExecutionEngine, TimerHandle, TimerService

ReleaseHandler = Callable[[Query], None]
CancelListener = Callable[[Query], None]
#: Observer of lifecycle transitions: ``(event, query)`` where event is one
#: of "submitted", "intercepted", "released", "cancelled", "rejected".
LifecycleListener = Callable[[str, Query], None]

#: Lifecycle event names emitted to lifecycle listeners, in natural order.
LIFECYCLE_EVENTS = (
    "submitted",
    "intercepted",
    "released",
    "cancelled",
    "rejected",
)


class QueryPatroller:
    """Interception layer between clients and the database engine."""

    def __init__(
        self,
        sim: TimerService,
        engine: ExecutionEngine,
        config: PatrollerConfig,
    ) -> None:
        config.validate()
        self.sim = sim
        self.engine = engine
        self.config = config
        self.tables = ControlTables()
        self._intercepted_classes: Set[str] = set()
        self._release_handler: Optional[ReleaseHandler] = None
        self._held: Set[int] = set()
        #: Released queries whose engine hand-off is still in flight
        #: (release-latency window); maps query id to the pending event.
        self._pending_release: Dict[int, TimerHandle] = {}
        self._intercepted_count = 0
        self._bypassed_count = 0
        self._submit_listeners = []
        self._cancel_listeners: List[CancelListener] = []
        self._lifecycle_listeners: List[LifecycleListener] = []
        engine.add_completion_listener(self._on_completion)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def enable_for_class(self, class_name: str) -> None:
        """Turn interception on for a service class."""
        self._intercepted_classes.add(class_name)

    def disable_for_class(self, class_name: str) -> None:
        """Turn interception off for a service class (queries bypass QP)."""
        self._intercepted_classes.discard(class_name)

    def intercepts(self, class_name: str) -> bool:
        """Whether queries of this class are currently intercepted."""
        return class_name in self._intercepted_classes

    def set_release_handler(self, handler: ReleaseHandler) -> None:
        """Install the controller that decides when held queries release."""
        self._release_handler = handler

    def add_submit_listener(self, listener: ReleaseHandler) -> None:
        """Observe every submitted statement (bypassed and intercepted).

        Used by workload detection: unlike the control tables, this sees
        the OLTP traffic too.
        """
        self._submit_listeners.append(listener)

    def add_cancel_listener(self, listener: CancelListener) -> None:
        """Observe every successful cancellation.

        The dispatcher and monitor subscribe so a cancelled statement
        releases its accounting (queue slot, in-flight cost, open-query
        entry) instead of leaking it until the next lazy purge.
        """
        self._cancel_listeners.append(listener)

    def add_lifecycle_listener(self, listener: LifecycleListener) -> None:
        """Observe every lifecycle transition QP performs.

        Listeners receive ``(event, query)`` for each of
        :data:`LIFECYCLE_EVENTS`.  This is the Query Tracer's subscription
        point: unlike the control tables it fires synchronously at the
        transition instant, so span begin/end times are exact.
        """
        self._lifecycle_listeners.append(listener)

    def _emit(self, event: str, query: Query) -> None:
        for listener in self._lifecycle_listeners:
            listener(event, query)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def held_queries(self) -> int:
        """Queries currently intercepted and not yet released."""
        return len(self._held)

    @property
    def intercepted_count(self) -> int:
        """Total queries ever intercepted."""
        return self._intercepted_count

    @property
    def bypassed_count(self) -> int:
        """Total queries that went straight to the engine."""
        return self._bypassed_count

    def register_instruments(self, registry: "MetricsRegistry") -> None:  # noqa: F821
        """Publish QP's live counters into an instrument registry."""
        registry.counter(
            "patroller_intercepted_total",
            description="Statements intercepted by Query Patroller",
            callback=lambda: self._intercepted_count,
        )
        registry.counter(
            "patroller_bypassed_total",
            description="Statements that bypassed interception",
            callback=lambda: self._bypassed_count,
        )
        registry.gauge(
            "patroller_held_queries",
            description="Statements currently intercepted and not released",
            callback=lambda: len(self._held),
        )

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(self, query: Query) -> None:
        """Entry point for every statement leaving a client."""
        query.submit_time = self.sim.now
        for listener in self._submit_listeners:
            listener(query)
        self._emit("submitted", query)
        if query.class_name not in self._intercepted_classes:
            self._bypassed_count += 1
            self.engine.execute(query)
            return
        self._intercepted_count += 1
        self.sim.schedule(
            self.config.interception_latency,
            lambda: self._intercept(query),
            "qp:intercept",
        )

    def _intercept(self, query: Query) -> None:
        query.state = QueryState.INTERCEPTED
        query.intercept_time = self.sim.now
        if self.config.overhead_cpu_demand > 0:
            # QP's bookkeeping burns server CPU on behalf of the statement.
            query.phases = (Phase(CPU, self.config.overhead_cpu_demand),) + query.phases
        self.tables.record_interception(
            query_id=query.query_id,
            class_name=query.class_name,
            client_id=query.client_id,
            template=query.template,
            kind=query.kind,
            estimated_cost=query.estimated_cost,
            submit_time=query.submit_time if query.submit_time is not None else 0.0,
            intercept_time=self.sim.now,
        )
        self._held.add(query.query_id)
        query.state = QueryState.QUEUED
        query.queue_time = self.sim.now
        self._emit("intercepted", query)
        if self._release_handler is None:
            raise PatrollerError(
                "query {} intercepted with no release handler installed".format(
                    query.query_id
                )
            )
        self._release_handler(query)

    def release(self, query: Query) -> None:
        """The unblocking API: let a held query proceed into the engine."""
        if query.query_id not in self._held:
            raise PatrollerError(
                "release of query {} which is not held".format(query.query_id)
            )
        self._held.discard(query.query_id)
        self.tables.mark_released(query.query_id, self.sim.now)
        query.state = QueryState.RELEASED
        # The release decision marks the start of "running in the DBMS":
        # the release latency is execution overhead, not scheduler hold time.
        query.release_time = self.sim.now
        self._emit("released", query)
        if self.config.release_latency > 0:
            self._pending_release[query.query_id] = self.sim.schedule(
                self.config.release_latency,
                lambda: self._begin_execution(query),
                "qp:release",
            )
        else:
            self.engine.execute(query)

    def _begin_execution(self, query: Query) -> None:
        self._pending_release.pop(query.query_id, None)
        self.engine.execute(query)

    def cancel(self, query: Query) -> bool:
        """Cancel a queued (or not-yet-executing) query — QP's cancel command.

        Succeeds for statements still held in a class queue and for released
        statements whose agent unblock is still in flight (the release
        latency window); once execution begins the request is refused
        (returns False).  A cancelled query never reaches the engine: its
        state becomes CANCELLED, the control-table row records the
        abandonment, and every cancel listener is notified so accounting
        layers (dispatcher, monitor) release what they hold for it.
        """
        if query.query_id in self._held:
            self._held.discard(query.query_id)
        else:
            pending = self._pending_release.pop(query.query_id, None)
            if pending is None or query.state != QueryState.RELEASED:
                return False
            pending.cancel()
        self.tables.mark_cancelled(query.query_id, self.sim.now)
        query.state = QueryState.CANCELLED
        query.finish_time = self.sim.now
        self._emit("cancelled", query)
        for listener in self._cancel_listeners:
            listener(query)
        return True

    def reject(self, query: Query) -> None:
        """Refuse a held query outright (QP's max-cost rejection).

        The submitter is notified through the query's completion callback
        with state REJECTED; the statement never reaches the engine.
        """
        if query.query_id not in self._held:
            raise PatrollerError(
                "reject of query {} which is not held".format(query.query_id)
            )
        self._held.discard(query.query_id)
        self.tables.mark_rejected(query.query_id, self.sim.now)
        query.state = QueryState.REJECTED
        query.finish_time = self.sim.now
        self._emit("rejected", query)
        if query.on_complete is not None:
            query.on_complete(query)

    def _on_completion(self, query: Query) -> None:
        # Only queries that went through interception have table rows.
        record = self.tables.find(query.query_id)
        if record is not None and record.status == "released":
            self.tables.mark_completed(query.query_id, self.sim.now)
