"""repro — reproduction of *Adapting Mixed Workloads to Meet SLOs in
Autonomic DBMSs* (Niu, Martin, Powley, Bird, Horman; ICDE 2007).

The package implements the paper's Query Scheduler framework — cost-based
workload adaptation with indirect OLTP control — on a fully simulated
DB2-like substrate.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import run_experiment

    result = run_experiment(controller="qs")
    print(result.goal_attainment())
"""

from repro.config import (
    PAPER_CLASSES,
    SimulationConfig,
    default_config,
)
from repro.core import (
    DirectScheduler,
    MPLController,
    NoControlController,
    QPPriorityController,
    QueryScheduler,
    ResponseTimeGoal,
    SchedulingPlan,
    ServiceClass,
    VelocityGoal,
    WorkloadDetector,
)
from repro.core.service_class import paper_classes
from repro.errors import (
    ConfigurationError,
    PatrollerError,
    ReproError,
    ScenarioError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from repro.experiments import (
    ExperimentSpec,
    build_bundle,
    compare,
    fit_oltp_slope,
    replicate,
    run_experiment,
    run_spec,
    sweep,
    sweep_system_cost_limit,
)
from repro.scenarios import (
    ScenarioSpec,
    find_scenario,
    library_names,
    load_scenario,
    loads_scenario,
    to_experiment_spec,
)
from repro.workloads import paper_schedule, tpcc_mix, tpch_mix

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SimulationConfig",
    "default_config",
    "PAPER_CLASSES",
    "paper_classes",
    "QueryScheduler",
    "NoControlController",
    "QPPriorityController",
    "MPLController",
    "DirectScheduler",
    "WorkloadDetector",
    "ServiceClass",
    "VelocityGoal",
    "ResponseTimeGoal",
    "SchedulingPlan",
    "run_experiment",
    "run_spec",
    "ExperimentSpec",
    "build_bundle",
    "sweep_system_cost_limit",
    "fit_oltp_slope",
    "replicate",
    "compare",
    "sweep",
    "ScenarioSpec",
    "load_scenario",
    "loads_scenario",
    "find_scenario",
    "library_names",
    "to_experiment_spec",
    "paper_schedule",
    "tpch_mix",
    "tpcc_mix",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulingError",
    "ScenarioError",
    "WorkloadError",
    "PatrollerError",
]
