"""Observability: per-query tracing, instrument registry, self-profiling.

Three pillars on top of the interval-level telemetry of
:mod:`repro.metrics.telemetry`:

* :class:`QueryTracer` — one balanced span per query phase (``intercept``,
  ``queue_wait``, ``execute``, terminal ``cancelled``/``rejected``),
  exportable as JSONL or Chrome trace-event JSON (Perfetto);
* :class:`MetricsRegistry` — named Counter/Gauge/Histogram instruments the
  controller components register themselves into, sampled into time series
  each control interval, renderable as Prometheus text;
* :class:`IntervalProfiler` — real wall-clock cost of the controller's own
  per-interval work (monitor/solver/dispatcher), strictly separate from
  sim time, surfaced as the ``overhead`` telemetry section.

See ``docs/OBSERVABILITY.md`` for usage.
"""

from repro.obs.export import (
    load_chrome_trace,
    load_spans,
    load_spans_jsonl,
    save_chrome_trace,
    save_spans_jsonl,
    spans_to_chrome,
    spans_to_jsonl,
)
from repro.obs.profiling import IntervalProfiler, summarize_overhead
from repro.obs.registry import (
    Counter,
    Gauge,
    HistogramInstrument,
    Instrument,
    MetricsRegistry,
)
from repro.obs.spans import (
    PHASES,
    TERMINAL_PHASES,
    PhaseStats,
    Span,
    phase_breakdown,
    slowest_spans,
    validate_spans,
)
from repro.obs.tracer import QueryTracer

__all__ = [
    "PHASES",
    "TERMINAL_PHASES",
    "Counter",
    "Gauge",
    "HistogramInstrument",
    "Instrument",
    "IntervalProfiler",
    "MetricsRegistry",
    "PhaseStats",
    "QueryTracer",
    "Span",
    "load_chrome_trace",
    "load_spans",
    "load_spans_jsonl",
    "phase_breakdown",
    "save_chrome_trace",
    "save_spans_jsonl",
    "slowest_spans",
    "spans_to_chrome",
    "spans_to_jsonl",
    "summarize_overhead",
    "validate_spans",
]
