"""The QueryTracer: one balanced span per query phase.

Subscribes to the Query Patroller's lifecycle events and the engine's
start/completion hooks and turns them into :class:`~repro.obs.spans.Span`
records:

* ``submitted``   (intercepted class) → open ``intercept``;
* ``intercepted``                     → close ``intercept``, open ``queue_wait``;
* ``released``                        → close ``queue_wait``, open ``execute``;
* engine completion                   → close ``execute``;
* ``cancelled`` / ``rejected``        → close whatever is open, emit a
  zero-length terminal marker.

The tracer listens to the *engine's* completion hook directly (not through
the dispatcher), so a dropped dispatcher completion callback — the
``repro.faults`` fault that leaks controller accounting — cannot leak a
span.  Queries still in flight when the run ends are closed by
:meth:`QueryTracer.finalize` with ``truncated=True``; after finalize the
trace is *balanced*: every opened span is closed.

Bypassed classes (the OLTP class in every paper experiment) produce no
spans by default — interception is exactly what they skip — but
``trace_bypassed=True`` records their ``execute`` spans from the engine's
start hook, which is how the per-class overhead comparison in
``docs/OBSERVABILITY.md`` is produced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import SimulationError
from repro.obs.spans import Span, validate_spans

if TYPE_CHECKING:  # wiring types only; the tracer duck-types at runtime
    from repro.dbms.query import Query
    from repro.patroller.patroller import QueryPatroller
    from repro.runtime import Clock, ExecutionEngine
    from repro.workloads.schedule import PeriodSchedule


class QueryTracer:
    """Records one span per query phase off the live lifecycle hooks.

    Timestamps come exclusively from the injected ``clock`` — any
    :class:`~repro.runtime.Clock` (the simulator under the sim backend, a
    wall clock under real-time backends).  ``sim=`` is accepted as a
    backward-compatible alias for ``clock=``.
    """

    def __init__(
        self,
        clock: Optional["Clock"] = None,
        patroller: "QueryPatroller" = None,
        engine: "ExecutionEngine" = None,
        schedule: Optional["PeriodSchedule"] = None,
        trace_bypassed: bool = False,
        sim: Optional["Clock"] = None,
    ) -> None:
        if clock is None:
            clock = sim
        if clock is None or patroller is None or engine is None:
            raise SimulationError(
                "QueryTracer needs a clock (or sim), a patroller and an engine"
            )
        self.clock = clock
        #: Backward-compatible alias for the injected clock.
        self.sim = clock
        self.patroller = patroller
        self.engine = engine
        self.schedule = schedule
        self.trace_bypassed = trace_bypassed
        self._spans: List[Span] = []
        #: The at-most-one open lifecycle span per query id.
        self._open: Dict[int, Span] = {}
        self._opened = 0
        self._closed = 0
        self._finalized = False
        patroller.add_lifecycle_listener(self._on_lifecycle)
        engine.add_start_listener(self._on_start)
        engine.add_completion_listener(self._on_completion)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Every recorded span in open order (a copy)."""
        return list(self._spans)

    @property
    def opened(self) -> int:
        """Total spans ever opened (terminal markers included)."""
        return self._opened

    @property
    def closed(self) -> int:
        """Total spans closed so far."""
        return self._closed

    @property
    def open_count(self) -> int:
        """Spans currently open (0 after :meth:`finalize`)."""
        return len(self._open)

    @property
    def balanced(self) -> bool:
        """Whether every opened span has been closed."""
        return self._opened == self._closed and not self._open

    def spans_for(self, query_id: int) -> List[Span]:
        """All spans of one query, in open order."""
        return [s for s in self._spans if s.query_id == query_id]

    def validate(self) -> List[str]:
        """Strict structural problems in the trace (empty when healthy)."""
        return validate_spans(self._spans)

    def assert_balanced(self) -> None:
        """Raise :class:`SimulationError` unless the trace is balanced."""
        if not self.balanced:
            stuck = sorted(self._open)
            raise SimulationError(
                "trace unbalanced: {} opened, {} closed, open for queries {}".format(
                    self._opened, self._closed, stuck[:10]
                )
            )

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------
    def _period_at(self, time: float) -> Optional[int]:
        if self.schedule is None:
            return None
        return self.schedule.period_at(time)

    def _open_span(self, query: "Query", phase: str, begin: float) -> Span:
        span = Span(
            query_id=query.query_id,
            class_name=query.class_name,
            phase=phase,
            begin=begin,
            template=query.template,
            kind=query.kind,
            estimated_cost=query.estimated_cost,
            period=self._period_at(begin),
        )
        self._spans.append(span)
        self._open[query.query_id] = span
        self._opened += 1
        return span

    def _close_open(self, query_id: int, end: float) -> Optional[Span]:
        span = self._open.pop(query_id, None)
        if span is None:
            return None
        span.close(end)
        self._closed += 1
        return span

    def _terminal(self, query: "Query", phase: str, now: float) -> None:
        span = Span(
            query_id=query.query_id,
            class_name=query.class_name,
            phase=phase,
            begin=now,
            template=query.template,
            kind=query.kind,
            estimated_cost=query.estimated_cost,
            period=self._period_at(now),
        )
        span.close(now)
        self._spans.append(span)
        self._opened += 1
        self._closed += 1

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_lifecycle(self, event: str, query: "Query") -> None:
        now = self.clock.now
        if event == "submitted":
            if self.patroller.intercepts(query.class_name):
                self._open_span(query, "intercept", now)
        elif event == "intercepted":
            if self._close_open(query.query_id, now) is not None:
                self._open_span(query, "queue_wait", now)
        elif event == "released":
            if self._close_open(query.query_id, now) is not None:
                self._open_span(query, "execute", now)
        elif event == "cancelled":
            traced = self._close_open(query.query_id, now) is not None
            if traced:
                self._terminal(query, "cancelled", now)
        elif event == "rejected":
            traced = self._close_open(query.query_id, now) is not None
            if traced:
                self._terminal(query, "rejected", now)

    def _on_start(self, query: "Query") -> None:
        # Bypassed statements reach the engine without any patroller
        # lifecycle events; their whole traced life is one execute span.
        if query.query_id in self._open:
            return
        if self.trace_bypassed and not self.patroller.intercepts(query.class_name):
            self._open_span(query, "execute", self.clock.now)

    def _on_completion(self, query: "Query") -> None:
        self._close_open(query.query_id, self.clock.now)

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finalize(self, now: Optional[float] = None) -> "QueryTracer":
        """Close every still-open span at ``now`` (default: sim time).

        Statements in flight at the simulation horizon never see their
        natural end event; their spans are closed as ``truncated`` so the
        trace balances without inventing phase ends.  Idempotent.
        """
        if now is None:
            now = self.clock.now
        for query_id in sorted(self._open):
            span = self._open.pop(query_id)
            span.close(max(now, span.begin), truncated=True)
            self._closed += 1
        self._finalized = True
        return self
