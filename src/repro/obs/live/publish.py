"""Publisher hooks: from the live control loop into a TelemetryHub.

A :class:`RunPublisher` is attached to one deployment (one shard, or the
single unsharded run) and bridges the existing observability instruments
onto the hub's wire protocol:

* the controller's plan listener → one ``interval`` event per control
  interval, carrying the full
  :class:`~repro.metrics.telemetry.ControlIntervalRecord` dict (the
  harness has already embedded any invariant violations by the time the
  publisher fires — it is registered *after* the validation harness)
  plus collector-derived per-class progress;
* the (optional) :class:`~repro.obs.QueryTracer` → a ``spans`` event per
  interval with the slowest spans that finished since the previous one;
* run completion → a ``run_end`` event with final attainment.

Everything here is read-only over the run's state: no RNG draws, no
timer scheduling, no mutation of any component — a run with publishers
attached is bit-identical to the same run without them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.live.hub import TelemetryHub

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.planner import PlanRecord
    from repro.experiments.runner import ExperimentResult, SimulationBundle
    from repro.obs.tracer import QueryTracer

#: Registry sampling bound applied to serve-mode runs (satellite: long
#: wall-clock dashboard runs must not grow sampling memory unboundedly).
LIVE_MAX_SAMPLES = 4096

#: Slowest spans carried per ``spans`` event.
SPANS_PER_EVENT = 8


def run_start_data(bundle: "SimulationBundle", controller_name: str) -> Dict:
    """The ``snapshot`` event payload describing one deployment."""
    schedule = bundle.schedule
    return {
        "controller": controller_name,
        "backend": type(bundle.backend).__name__ if bundle.backend else "sim",
        "seed": bundle.config.seed,
        "system_cost_limit": bundle.config.system_cost_limit,
        "control_interval": bundle.config.planner.control_interval,
        "periods": schedule.num_periods,
        "period_seconds": schedule.period_seconds,
        "horizon": schedule.horizon,
        "classes": [
            {
                "name": c.name,
                "kind": c.kind,
                "goal_metric": c.goal.metric,
                "goal_target": c.goal.target,
                "importance": c.importance,
            }
            for c in bundle.classes
        ],
    }


class RunPublisher:
    """Publishes one deployment's live telemetry into a hub."""

    def __init__(
        self,
        hub: TelemetryHub,
        bundle: "SimulationBundle",
        controller: object,
        shard: Optional[int] = None,
        tracer: Optional["QueryTracer"] = None,
    ) -> None:
        self.hub = hub
        self.bundle = bundle
        self.controller = controller
        self.shard = shard
        self.tracer = tracer
        self._spans_published = 0
        self.intervals_published = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> bool:
        """Register the per-interval hook on the controller's planner.

        Returns whether interval events will flow — controllers without a
        planner (the static baselines) publish only start/end events.
        Call *after* the validation harness is attached so each interval
        event sees its record's violations already embedded.
        """
        planner = getattr(self.controller, "planner", None)
        if planner is None:
            return False
        planner.add_plan_listener(self.on_plan)
        registry = getattr(self.controller, "registry", None)
        if registry is not None:
            self.hub.register_registry(registry, shard=self.shard)
            if registry.max_samples is None:
                registry.max_samples = LIVE_MAX_SAMPLES
        return True

    # ------------------------------------------------------------------
    # Event assembly
    # ------------------------------------------------------------------
    def _class_progress(self) -> Dict[str, Dict]:
        collector = self.bundle.collector
        completions = collector.completions_by_class()
        progress: Dict[str, Dict] = {}
        for service_class in self.bundle.classes:
            name = service_class.name
            progress[name] = {
                "completions": completions.get(name, 0),
                "attainment": collector.goal_attainment(service_class),
                "goal_metric": service_class.goal.metric,
                "goal_target": service_class.goal.target,
            }
        return progress

    def on_plan(self, record: "PlanRecord") -> None:
        """Plan-listener hook: publish this control interval."""
        telemetry = getattr(self.controller, "telemetry", None)
        record_dict: Optional[Dict] = None
        if telemetry is not None and telemetry.store.last is not None:
            last = telemetry.store.last
            if last.time == record.time:
                record_dict = last.to_dict()
        data = {
            "interval_index": record.interval_index,
            "trigger": record.trigger,
            "cost_limits": record.plan.as_dict(),
            "classes": self._class_progress(),
            "total_completions": self.bundle.collector.total_completions,
            "record": record_dict,
        }
        self.hub.publish("interval", data, time=record.time, shard=self.shard)
        self.intervals_published += 1
        self._publish_recent_spans(record.time)

    def _publish_recent_spans(self, now: float) -> None:
        if self.tracer is None:
            return
        spans = self.tracer.spans
        new = spans[self._spans_published:]
        self._spans_published = len(spans)
        finished = [
            s for s in new
            if s.end is not None and s.phase in ("queue_wait", "execute")
        ]
        if not finished:
            return
        finished.sort(key=lambda s: s.duration, reverse=True)
        payload: List[Dict] = [
            {
                "query_id": s.query_id,
                "class": s.class_name,
                "phase": s.phase,
                "duration": s.duration,
                "begin": s.begin,
                "end": s.end,
                "estimated_cost": s.estimated_cost,
                "period": s.period,
            }
            for s in finished[:SPANS_PER_EVENT]
        ]
        self.hub.publish("spans", {"slowest": payload}, time=now, shard=self.shard)

    def publish_start(self) -> None:
        """Publish the run-metadata ``snapshot`` event (unsharded runs)."""
        controller_name = getattr(self.controller, "name", type(self.controller).__name__)
        self.hub.publish(
            "snapshot",
            run_start_data(self.bundle, controller_name),
            time=0.0,
            shard=self.shard,
        )

    def publish_end(self, result: "ExperimentResult") -> None:
        """Publish this deployment's final ``run_end`` event."""
        data = {
            "controller": result.controller_name,
            "attainment": result.goal_attainment(),
            "completions": result.collector.completions_by_class(),
            "total_completions": result.collector.total_completions,
            "intervals": self.intervals_published,
        }
        self.hub.publish(
            "run_end",
            data,
            time=self.bundle.schedule.horizon,
            shard=self.shard,
        )
