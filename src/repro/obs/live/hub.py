"""The push-based telemetry hub: a thread-safe, bounded event bus.

One :class:`TelemetryHub` sits between the (single-threaded) control
loop and any number of live consumers — the embedded SSE dashboard, a
test subscribed through ``urllib``, a raw socket.  Publishers call
:meth:`TelemetryHub.publish` with one of the versioned protocol's event
types; the hub stamps a monotonic sequence number, folds the event into
its *snapshot* (the current state a late joiner needs), and fans the
event out to every subscriber.

The cardinal rule is that **publishing never blocks and never fails the
run**: each subscriber owns a bounded queue, and when a slow consumer
falls behind the hub evicts that subscriber's oldest queued event and
increments its explicit ``dropped`` counter — the control loop's
timeline is observation-only and must be bit-identical with or without
the hub attached.

Protocol (version :data:`PROTOCOL_VERSION`)
-------------------------------------------

Every event is a JSON object::

    {"v": 1, "seq": 17, "type": "interval", "time": 120.0,
     "shard": 0, "data": {...}}

``seq`` increases by exactly one per published event (a consumer can
detect its own gaps); ``shard`` is the shard index for per-shard events
and ``null`` for fleet-level / unsharded events.  Event types:

``snapshot``
    Run metadata published once at run start (controller, backend,
    classes and their goals, schedule shape, shard layout).
``interval``
    One control-interval record: the full
    :class:`~repro.metrics.telemetry.ControlIntervalRecord` dict plus
    collector-derived per-class progress (completions, attainment).
``spans``
    The slowest recently-finished query spans (only when the run is
    traced).
``shard_rebalance``
    A cost-limit re-split across the fleet: per-shard demands and the
    new per-shard limits (sum exactly to the global limit).
``run_end``
    Final per-class attainment and completions; the fleet-level
    ``run_end`` additionally carries the merged sharded report.
"""

from __future__ import annotations

import copy
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import MetricsError
from repro.obs.registry import MetricsRegistry, render_prometheus

#: Version stamped into every event and snapshot.
PROTOCOL_VERSION = 1

#: The event types the hub accepts.
EVENT_TYPES = ("snapshot", "interval", "spans", "shard_rebalance", "run_end")

#: Default per-subscriber queue bound.
DEFAULT_MAX_QUEUE = 256

#: How many recent rebalance / spans events the snapshot retains.
SNAPSHOT_REBALANCES = 16
SNAPSHOT_SPANS = 1


def _shard_key(shard: Optional[int]) -> str:
    """JSON-object key for a shard index (``"fleet"`` for fleet-level)."""
    return "fleet" if shard is None else str(shard)


class LiveEvent:
    """One published protocol event (immutable once created)."""

    __slots__ = ("seq", "type", "time", "shard", "data")

    def __init__(
        self,
        seq: int,
        type: str,
        data: Dict,
        time: Optional[float] = None,
        shard: Optional[int] = None,
    ) -> None:
        self.seq = seq
        self.type = type
        self.time = time
        self.shard = shard
        self.data = data

    def to_dict(self) -> Dict:
        """The JSON-ready wire form."""
        return {
            "v": PROTOCOL_VERSION,
            "seq": self.seq,
            "type": self.type,
            "time": self.time,
            "shard": self.shard,
            "data": self.data,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "LiveEvent(seq={}, type={!r}, shard={!r})".format(
            self.seq, self.type, self.shard
        )


class Subscription:
    """One consumer's bounded event queue.

    Created by :meth:`TelemetryHub.subscribe`; events arrive in publish
    order.  When the queue is full the *oldest* queued event is evicted
    (fresh state beats stale state on a dashboard) and :attr:`dropped`
    is incremented — the consumer can both detect and report the gap via
    the sequence numbers.
    """

    def __init__(self, hub: "TelemetryHub", max_queue: int) -> None:
        if not isinstance(max_queue, int) or isinstance(max_queue, bool) or max_queue < 1:
            raise MetricsError(
                "max_queue must be a positive integer, got {!r}".format(max_queue)
            )
        self._hub = hub
        self.max_queue = max_queue
        self._queue: Deque[LiveEvent] = deque()
        self._cond = threading.Condition()
        #: Events evicted because this consumer fell behind.
        self.dropped = 0
        self._closed = False

    # Called by the hub, never blocks.
    def _offer(self, event: LiveEvent) -> None:
        with self._cond:
            if self._closed:
                return
            if len(self._queue) >= self.max_queue:
                self._queue.popleft()
                self.dropped += 1
            self._queue.append(event)
            self._cond.notify_all()

    @property
    def queued(self) -> int:
        """Events currently waiting to be consumed."""
        with self._cond:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def pop(self, timeout: Optional[float] = None) -> Optional[LiveEvent]:
        """Next event, blocking up to ``timeout`` seconds (None = forever).

        Returns ``None`` on timeout or when the subscription is closed.
        """
        with self._cond:
            if not self._queue and not self._closed:
                self._cond.wait(timeout)
            if self._queue:
                return self._queue.popleft()
            return None

    def drain(self) -> List[LiveEvent]:
        """Every queued event, without blocking."""
        with self._cond:
            events = list(self._queue)
            self._queue.clear()
            return events

    def close(self) -> None:
        """Detach from the hub; pending :meth:`pop` calls wake with None."""
        self._hub.unsubscribe(self)
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class TelemetryHub:
    """The event bus: publish, subscribe, snapshot, render metrics.

    All methods are thread-safe.  The hub also acts as the registry
    directory for the ``/metrics`` endpoint: each deployment's
    :class:`~repro.obs.registry.MetricsRegistry` is registered under its
    shard index and :meth:`prometheus` renders the fleet as one
    well-formed exposition (per-shard samples discriminated by a
    ``shard`` label).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._subscribers: List[Subscription] = []
        self._registries: List[Tuple[Optional[int], MetricsRegistry]] = []
        self._state: Dict = {
            "run": None,
            "shards": {},
            "rebalances": [],
            "spans": {},
            "run_end": {},
        }

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        type: str,
        data: Dict,
        time: Optional[float] = None,
        shard: Optional[int] = None,
    ) -> LiveEvent:
        """Publish one event; stamps the next sequence number.

        Never blocks: slow subscribers lose their oldest queued event
        instead.  Returns the stamped event.
        """
        if type not in EVENT_TYPES:
            raise MetricsError(
                "unknown live event type {!r}; expected one of {}".format(
                    type, EVENT_TYPES
                )
            )
        with self._lock:
            self._seq += 1
            event = LiveEvent(self._seq, type, data, time=time, shard=shard)
            self._fold_into_state(event)
            subscribers = list(self._subscribers)
        for subscription in subscribers:
            subscription._offer(event)
        return event

    def _fold_into_state(self, event: LiveEvent) -> None:
        """Update the late-joiner snapshot under the hub lock."""
        key = _shard_key(event.shard)
        if event.type == "snapshot":
            self._state["run"] = event.data
        elif event.type == "interval":
            self._state["shards"][key] = {
                "time": event.time,
                "seq": event.seq,
                "data": event.data,
            }
        elif event.type == "spans":
            self._state["spans"][key] = event.data
        elif event.type == "shard_rebalance":
            rebalances = self._state["rebalances"]
            rebalances.append({"time": event.time, "seq": event.seq, "data": event.data})
            del rebalances[:-SNAPSHOT_REBALANCES]
        elif event.type == "run_end":
            self._state["run_end"][key] = event.data

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, max_queue: int = DEFAULT_MAX_QUEUE) -> Subscription:
        """Attach a consumer with a bounded queue of ``max_queue`` events."""
        subscription = Subscription(self, max_queue)
        with self._lock:
            self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach a consumer (idempotent)."""
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass

    @property
    def subscriber_count(self) -> int:
        """Currently attached consumers."""
        with self._lock:
            return len(self._subscribers)

    def subscriber_stats(self) -> List[Dict[str, int]]:
        """Queue depth and drop counter per subscriber (dashboard data)."""
        with self._lock:
            subscribers = list(self._subscribers)
        return [
            {"queued": s.queued, "dropped": s.dropped, "max_queue": s.max_queue}
            for s in subscribers
        ]

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """The last sequence number issued (0 before any publish)."""
        with self._lock:
            return self._seq

    def snapshot(self) -> Dict:
        """The versioned current state for a late joiner (a deep copy).

        Mirrors what a subscriber that had been attached from the start
        would know: the run metadata, each shard's latest interval, the
        recent rebalances, the latest spans, and any run-end payloads.
        """
        with self._lock:
            state = copy.deepcopy(self._state)
            state["v"] = PROTOCOL_VERSION
            state["seq"] = self._seq
            state["subscribers"] = [
                {"queued": s.queued, "dropped": s.dropped, "max_queue": s.max_queue}
                for s in self._subscribers
            ]
            return state

    # ------------------------------------------------------------------
    # Metrics directory
    # ------------------------------------------------------------------
    def register_registry(
        self, registry: MetricsRegistry, shard: Optional[int] = None
    ) -> None:
        """Expose a deployment's instrument registry through ``/metrics``."""
        with self._lock:
            self._registries.append((shard, registry))

    def prometheus(self) -> str:
        """The whole fleet's instruments as one Prometheus exposition."""
        with self._lock:
            registries = list(self._registries)
        sources = [
            (None if shard is None else {"shard": str(shard)}, registry)
            for shard, registry in registries
        ]
        return render_prometheus(sources)
