"""The embedded single-file dashboard.

Plain HTML + CSS + vanilla JS, inlined as one Python string so the HTTP
layer has no static-file handling and the wheel carries no assets.  The
page opens an ``EventSource`` on ``/events``, seeds itself from the
stream's initial ``snapshot`` frame, de-duplicates on ``seq``, and
renders one pane per shard plus a client-side fleet aggregate
(completion-weighted attainment, summed completions — the same
aggregation semantics as :mod:`repro.shard.report`).

Charts follow the house dataviz rules: categorical class colors in fixed
slot order (never cycled past the validated set — extra classes reuse
the last slot deliberately greyed), thin marks, sparklines without axes,
text in text tokens rather than series colors, and both light and dark
palettes selected per scheme rather than auto-inverted.
"""

DASHBOARD_HTML = r"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro live</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb; --surface-2: #f1f0ee; --border: #dddbd6;
    --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #8a887f;
    --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
    --series-4: #eda100; --series-5: #e87ba4;
    --good: #008300; --bad: #e34948;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19; --surface-2: #242423; --border: #3a3936;
      --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #8a887f;
      --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
      --series-4: #c98500; --series-5: #d55181;
      --good: #35a847; --bad: #e66767;
    }
  }
  * { box-sizing: border-box; }
  body.viz-root {
    margin: 0; padding: 18px 22px; background: var(--surface-1);
    color: var(--text-primary);
    font: 13px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 16px; margin: 0; font-weight: 650; }
  h2 { font-size: 12px; margin: 18px 0 8px; font-weight: 600;
       color: var(--text-secondary); text-transform: uppercase;
       letter-spacing: 0.06em; }
  header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; }
  #runmeta { color: var(--text-secondary); }
  .pill { font-size: 11px; padding: 2px 9px; border-radius: 999px;
          border: 1px solid var(--border); color: var(--text-secondary); }
  .pill.live { border-color: var(--good); color: var(--good); }
  .pill.done { border-color: var(--series-1); color: var(--series-1); }
  .pill.dead { border-color: var(--bad); color: var(--bad); }
  .tiles { display: flex; gap: 10px; flex-wrap: wrap; margin-top: 14px; }
  .tile { background: var(--surface-2); border: 1px solid var(--border);
          border-radius: 8px; padding: 8px 14px; min-width: 108px; }
  .tile .v { font-size: 20px; font-weight: 650; font-variant-numeric: tabular-nums; }
  .tile .k { font-size: 11px; color: var(--text-muted); }
  .panes { display: grid; gap: 12px;
           grid-template-columns: repeat(auto-fill, minmax(330px, 1fr)); }
  .pane { background: var(--surface-2); border: 1px solid var(--border);
          border-radius: 10px; padding: 10px 12px; }
  .pane h3 { margin: 0 0 8px; font-size: 12px; font-weight: 650; }
  .pane h3 small { color: var(--text-muted); font-weight: 400; }
  table { border-collapse: collapse; width: 100%;
          font-variant-numeric: tabular-nums; }
  th { text-align: left; font-size: 11px; color: var(--text-muted);
       font-weight: 500; padding: 2px 8px 2px 0; }
  td { padding: 3px 8px 3px 0; border-top: 1px solid var(--border);
       color: var(--text-secondary); }
  td.num, th.num { text-align: right; }
  .cname { color: var(--text-primary); white-space: nowrap; }
  .swatch { display: inline-block; width: 9px; height: 9px; border-radius: 2px;
            margin-right: 6px; vertical-align: baseline; }
  canvas.spark { vertical-align: middle; }
  .sharebar { display: flex; height: 10px; border-radius: 4px; overflow: hidden;
              gap: 2px; background: var(--surface-1); margin-top: 8px; }
  .sharebar div { height: 100%; }
  .legend { margin-top: 5px; font-size: 11px; color: var(--text-secondary); }
  .legend span { margin-right: 12px; white-space: nowrap; }
  #spans td:first-child, #spans th:first-child { padding-left: 0; }
  .muted { color: var(--text-muted); }
  footer { margin-top: 20px; font-size: 11px; color: var(--text-muted); }
</style>
</head>
<body class="viz-root">
<header>
  <h1>repro live</h1>
  <span id="conn" class="pill">connecting&hellip;</span>
  <span id="runmeta" class="muted">waiting for run metadata</span>
</header>

<div class="tiles">
  <div class="tile"><div class="v" id="t-seq">0</div><div class="k">last seq</div></div>
  <div class="tile"><div class="v" id="t-intervals">0</div><div class="k">interval events</div></div>
  <div class="tile"><div class="v" id="t-completions">0</div><div class="k">completions</div></div>
  <div class="tile"><div class="v" id="t-dropped">0</div><div class="k">events dropped</div></div>
  <div class="tile"><div class="v" id="t-time">&ndash;</div><div class="k">sim time (s)</div></div>
</div>

<h2>Fleet &amp; shards</h2>
<div class="panes" id="panes"></div>

<h2>Cost-limit rebalances</h2>
<div class="pane" id="rebalances"><span class="muted">none yet</span></div>

<h2>Slowest recent spans</h2>
<div class="pane"><table id="spans">
  <thead><tr><th>query</th><th>class</th><th>phase</th>
  <th class="num">duration (s)</th><th class="num">cost</th><th class="num">period</th></tr></thead>
  <tbody><tr><td colspan="6" class="muted">no spans yet (run with tracing)</td></tr></tbody>
</table></div>

<footer>protocol v<span id="pv">1</span> &middot; served by the run process
  (stdlib http.server + SSE) &middot; <a href="/api/snapshot">/api/snapshot</a>
  &middot; <a href="/metrics">/metrics</a></footer>

<script>
"use strict";
const SLOTS = ["--series-1", "--series-2", "--series-3", "--series-4", "--series-5"];
const state = {
  run: null, shards: {}, attain: {}, spans: {}, rebalances: [],
  runEnd: {}, lastSeq: 0, intervals: 0, dropped: 0,
};
const css = name => getComputedStyle(document.body).getPropertyValue(name).trim();
const classColor = (() => {
  const order = [];
  return name => {
    let i = order.indexOf(name);
    if (i < 0) { order.push(name); i = order.length - 1; }
    return css(SLOTS[Math.min(i, SLOTS.length - 1)]);
  };
})();
const fmt = (x, d = 0) => x == null ? "–" :
  Number(x).toLocaleString("en-US", {maximumFractionDigits: d, minimumFractionDigits: d});

function shardTitle(key) {
  return key === "fleet" ? (state.run && state.run.shards > 1 ? "fleet (merged)" : "run") :
    "shard " + key;
}

function noteInterval(key, time, data) {
  state.shards[key] = {time: time, data: data};
  const attain = state.attain[key] = state.attain[key] || {};
  for (const [name, info] of Object.entries(data.classes || {})) {
    (attain[name] = attain[name] || []).push(info.attainment);
    if (attain[name].length > 240) attain[name].shift();
  }
}

function handle(ev) {
  if (ev.seq != null) {
    if (ev.seq <= state.lastSeq) return;   // duplicate from snapshot overlap
    state.lastSeq = ev.seq;
  }
  if (ev.type === "snapshot") state.run = ev.data;
  else if (ev.type === "interval") {
    state.intervals += 1;
    noteInterval(ev.shard == null ? "fleet" : String(ev.shard), ev.time, ev.data);
  }
  else if (ev.type === "spans")
    state.spans[ev.shard == null ? "fleet" : String(ev.shard)] = ev.data;
  else if (ev.type === "shard_rebalance") {
    state.rebalances.push({time: ev.time, data: ev.data});
    if (state.rebalances.length > 16) state.rebalances.shift();
  }
  else if (ev.type === "run_end")
    state.runEnd[ev.shard == null ? "fleet" : String(ev.shard)] = ev.data;
}

function seed(snap) {
  state.run = snap.run || state.run;
  for (const [key, entry] of Object.entries(snap.shards || {}))
    noteInterval(key, entry.time, entry.data);
  for (const [key, data] of Object.entries(snap.spans || {})) state.spans[key] = data;
  state.rebalances = (snap.rebalances || []).map(r => ({time: r.time, data: r.data}));
  for (const [key, data] of Object.entries(snap.run_end || {})) state.runEnd[key] = data;
  state.lastSeq = snap.seq || 0;
  document.getElementById("pv").textContent = snap.v || 1;
}

function spark(values, color, goal) {
  const w = 110, h = 26, c = document.createElement("canvas");
  c.width = w * devicePixelRatio; c.height = h * devicePixelRatio;
  c.style.width = w + "px"; c.style.height = h + "px"; c.className = "spark";
  const g = c.getContext("2d");
  g.scale(devicePixelRatio, devicePixelRatio);
  const y = v => h - 3 - Math.max(0, Math.min(1, v)) * (h - 6);
  if (goal != null) {   // reference line: goal attainment = 1.0
    g.strokeStyle = css("--border"); g.lineWidth = 1;
    g.beginPath(); g.moveTo(0, y(goal)); g.lineTo(w, y(goal)); g.stroke();
  }
  if (!values.length) return c;
  g.strokeStyle = color; g.lineWidth = 2; g.lineJoin = "round"; g.beginPath();
  const step = values.length > 1 ? w / (values.length - 1) : 0;
  values.forEach((v, i) => { const px = values.length > 1 ? i * step : w / 2;
    i ? g.lineTo(px, y(v)) : g.moveTo(px, y(v)); });
  g.stroke();
  const last = values[values.length - 1];
  g.fillStyle = color; g.beginPath();
  g.arc(values.length > 1 ? w : w / 2, y(last), 2.5, 0, 7); g.fill();
  return c;
}

function fleetAggregate() {
  // Completion-weighted attainment + summed completions across shard
  // panes (mirrors repro.shard.report's merge semantics, client-side).
  const keys = Object.keys(state.shards).filter(k => k !== "fleet");
  if (!keys.length) return null;
  const classes = {};
  let total = 0, time = null;
  for (const key of keys) {
    const entry = state.shards[key];
    if (entry.time != null && (time == null || entry.time > time)) time = entry.time;
    total += entry.data.total_completions || 0;
    for (const [name, info] of Object.entries(entry.data.classes || {})) {
      const c = classes[name] = classes[name] ||
        {completions: 0, weighted: 0, goal_metric: info.goal_metric,
         goal_target: info.goal_target};
      c.completions += info.completions;
      c.weighted += info.attainment * info.completions;
    }
  }
  for (const c of Object.values(classes))
    c.attainment = c.completions ? c.weighted / c.completions : 0;
  return {time: time, data: {classes: classes, total_completions: total,
                             cost_limits: null, record: null}, synthetic: true};
}

function renderPane(key, entry) {
  const pane = document.createElement("div");
  pane.className = "pane";
  const data = entry.data;
  const ended = state.runEnd[key];
  const h3 = document.createElement("h3");
  h3.innerHTML = shardTitle(key) +
    " <small>t=" + fmt(entry.time, 1) + "s &middot; " +
    fmt(data.total_completions) + " done" + (ended ? " &middot; ended" : "") +
    "</small>";
  pane.appendChild(h3);
  const table = document.createElement("table");
  table.innerHTML = "<thead><tr><th>class</th><th>attainment</th>" +
    "<th class='num'>now</th><th class='num'>done</th><th class='num'>queue</th></tr></thead>";
  const body = document.createElement("tbody");
  const dispatcher = (data.record && data.record.dispatcher) || {};
  for (const [name, info] of Object.entries(data.classes || {})) {
    const tr = document.createElement("tr");
    const color = classColor(name);
    const sw = "<span class='swatch' style='background:" + color + "'></span>";
    const series = (state.attain[key] && state.attain[key][name]) || [info.attainment];
    const queue = dispatcher[name] ? dispatcher[name].queue_length : null;
    const tdName = document.createElement("td");
    tdName.className = "cname"; tdName.innerHTML = sw + name;
    const tdSpark = document.createElement("td");
    tdSpark.appendChild(spark(key === "fleet" && entry.synthetic ?
      [info.attainment] : series, color, 1.0));
    tr.appendChild(tdName); tr.appendChild(tdSpark);
    for (const cell of [fmt(info.attainment * 100) + "%", fmt(info.completions),
                        queue == null ? "–" : fmt(queue)]) {
      const td = document.createElement("td"); td.className = "num";
      td.textContent = cell; tr.appendChild(td);
    }
    body.appendChild(tr);
  }
  table.appendChild(body);
  pane.appendChild(table);
  if (data.cost_limits) {
    const totalLimit = Object.values(data.cost_limits).reduce((a, b) => a + b, 0);
    const bar = document.createElement("div");
    bar.className = "sharebar"; bar.title = "class cost-limit shares";
    const legend = document.createElement("div"); legend.className = "legend";
    for (const [name, limit] of Object.entries(data.cost_limits)) {
      const seg = document.createElement("div");
      seg.style.background = classColor(name);
      seg.style.width = (totalLimit ? 100 * limit / totalLimit : 0) + "%";
      bar.appendChild(seg);
      const item = document.createElement("span");
      item.innerHTML = "<span class='swatch' style='background:" +
        classColor(name) + "'></span>" + name + " " + fmt(limit);
      legend.appendChild(item);
    }
    pane.appendChild(bar); pane.appendChild(legend);
  }
  return pane;
}

function render() {
  document.getElementById("t-seq").textContent = fmt(state.lastSeq);
  document.getElementById("t-intervals").textContent = fmt(state.intervals);
  document.getElementById("t-dropped").textContent = fmt(state.dropped);
  if (state.run) {
    const r = state.run;
    document.getElementById("runmeta").textContent =
      r.controller + " on " + r.backend + " · " + r.periods + "×" +
      fmt(r.period_seconds, 0) + "s · seed " + r.seed +
      (r.shards > 1 ? " · " + r.shards + " shards (" + r.router + "/" +
       r.rebalance + ")" : "");
  }
  const panes = document.getElementById("panes");
  panes.textContent = "";
  const entries = Object.entries(state.shards)
    .sort((a, b) => (a[0] === "fleet" ? -1 : b[0] === "fleet" ? 1 :
                     Number(a[0]) - Number(b[0])));
  const agg = !state.shards.fleet && fleetAggregate();
  if (agg) panes.appendChild(renderPane("fleet", agg));
  let latest = null, total = 0;
  for (const [key, entry] of entries) {
    panes.appendChild(renderPane(key, entry));
    if (entry.time != null && (latest == null || entry.time > latest)) latest = entry.time;
    if (key !== "fleet") total += entry.data.total_completions || 0;
  }
  if (state.shards.fleet) total = state.shards.fleet.data.total_completions || 0;
  if (agg) total = agg.data.total_completions;
  document.getElementById("t-completions").textContent = fmt(total);
  document.getElementById("t-time").textContent = fmt(latest, 1);

  const reb = document.getElementById("rebalances");
  if (state.rebalances.length) {
    reb.innerHTML = state.rebalances.slice(-8).reverse().map(r =>
      "<div>t=" + fmt(r.time, 1) + "s &rarr; [" +
      (r.data.limits || []).map(v => fmt(v)).join(", ") + "] timerons" +
      (r.data.mode ? " <span class='muted'>(" + r.data.mode + ")</span>" : "") +
      "</div>").join("");
  }
  const rows = [];
  for (const [key, data] of Object.entries(state.spans))
    for (const s of data.slowest || [])
      rows.push({shard: key, s: s});
  rows.sort((a, b) => b.s.duration - a.s.duration);
  if (rows.length) {
    document.querySelector("#spans tbody").innerHTML = rows.slice(0, 10).map(r =>
      "<tr><td>#" + r.s.query_id + (r.shard !== "fleet" ? " <span class='muted'>s" +
      r.shard + "</span>" : "") + "</td><td>" + r.s["class"] + "</td><td>" +
      r.s.phase + "</td><td class='num'>" + fmt(r.s.duration, 3) +
      "</td><td class='num'>" + fmt(r.s.estimated_cost) +
      "</td><td class='num'>" + (r.s.period == null ? "–" : r.s.period) +
      "</td></tr>").join("");
  }
}

const conn = document.getElementById("conn");
function setConn(cls, text) { conn.className = "pill " + cls; conn.textContent = text; }

const source = new EventSource("/events");
let expected = null;
source.addEventListener("snapshot", e => {
  const payload = JSON.parse(e.data);
  seed(payload.snapshot || payload.data || {});
  setConn("live", "live");
  render();
});
for (const type of ["interval", "spans", "shard_rebalance", "run_end"]) {
  source.addEventListener(type, e => {
    const ev = JSON.parse(e.data);
    if (expected != null && ev.seq > expected)
      state.dropped += ev.seq - expected;   // gap = events we never saw
    expected = ev.seq + 1;
    handle(ev);
    if (Object.keys(state.runEnd).length) setConn("done", "run ended");
    render();
  });
}
source.onerror = () => {
  if (Object.keys(state.runEnd).length) { setConn("done", "run ended"); source.close(); }
  else setConn("dead", "disconnected");
};
</script>
</body>
</html>
"""
