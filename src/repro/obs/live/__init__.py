"""Live telemetry streaming: hub, publishers, and the embedded dashboard.

``repro.obs.live`` turns a running experiment into a push-based stream:

* :class:`~repro.obs.live.hub.TelemetryHub` — the thread-safe event bus
  with the versioned JSON snapshot/delta protocol;
* :class:`~repro.obs.live.publish.RunPublisher` — bridges one
  deployment's instruments (plan listeners, collector, tracer) onto the
  hub;
* :class:`~repro.obs.live.server.LiveServer` — the stdlib-only HTTP
  layer (``/api/snapshot``, ``/events`` SSE, ``/metrics``, and the
  single-file dashboard at ``/``).

The whole package imports bare — no dependency beyond the standard
library — and attaching a hub to a run is observation-only: results are
bit-identical with or without it.
"""

from repro.obs.live.hub import (
    DEFAULT_MAX_QUEUE,
    EVENT_TYPES,
    PROTOCOL_VERSION,
    LiveEvent,
    Subscription,
    TelemetryHub,
)
from repro.obs.live.publish import LIVE_MAX_SAMPLES, RunPublisher, run_start_data
from repro.obs.live.server import LiveServer

__all__ = [
    "DEFAULT_MAX_QUEUE",
    "EVENT_TYPES",
    "LIVE_MAX_SAMPLES",
    "PROTOCOL_VERSION",
    "LiveEvent",
    "LiveServer",
    "RunPublisher",
    "Subscription",
    "TelemetryHub",
    "run_start_data",
]
