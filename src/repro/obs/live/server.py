"""The embedded HTTP layer: snapshot, SSE stream, Prometheus, dashboard.

Standard library only — ``http.server.ThreadingHTTPServer`` plus
Server-Sent Events — because the build environment cannot install a web
framework, and an observability layer that needs one is an observability
layer that is off.  Endpoints:

``GET /``
    The single-file embedded dashboard (:mod:`repro.obs.live.dashboard`).
``GET /api/snapshot``
    The hub's current versioned state as JSON (late-joiner catch-up).
``GET /events``
    The live event stream as Server-Sent Events.  The first frame is a
    ``snapshot`` SSE event carrying the same payload as ``/api/snapshot``;
    subsequent frames are the protocol events, each as ``event: <type>``
    with the JSON event object in ``data:``.  The subscription is opened
    *before* the snapshot is taken, so no event can fall into the gap —
    an event published in between may appear both in the snapshot and in
    the stream, and consumers de-duplicate on ``seq``.
``GET /metrics``
    The whole fleet's instrument registries in the Prometheus text
    exposition format (per-shard samples carry a ``shard`` label).

Each SSE consumer runs in its own handler thread blocking on its
bounded hub subscription; a consumer that stops reading loses oldest
events (its ``dropped`` counter says how many) and never stalls the run.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import urlparse

from repro.obs.live.dashboard import DASHBOARD_HTML
from repro.obs.live.hub import TelemetryHub

#: Seconds between SSE keep-alive comments when no event arrives (also
#: how quickly a handler notices the server is stopping).
SSE_HEARTBEAT_SECONDS = 1.0


class _LiveHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the hub for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, hub: TelemetryHub) -> None:
        super().__init__(address, handler)
        self.hub = hub
        self.stopping = threading.Event()


class LiveRequestHandler(BaseHTTPRequestHandler):
    """Routes one request against the hub (no framework, no deps)."""

    server: _LiveHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the CLI owns stdout; request logging is noise

    def _send_payload(self, payload: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        self.wfile.write(payload)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib signature
        path = urlparse(self.path).path
        try:
            if path in ("/", "/index.html"):
                self._send_payload(
                    DASHBOARD_HTML.encode("utf-8"), "text/html; charset=utf-8"
                )
            elif path == "/api/snapshot":
                payload = json.dumps(self.server.hub.snapshot()).encode("utf-8")
                self._send_payload(payload, "application/json")
            elif path == "/metrics":
                payload = self.server.hub.prometheus().encode("utf-8")
                self._send_payload(
                    payload, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif path == "/events":
                self._stream_events()
            else:
                self._send_payload(
                    json.dumps({"error": "not found", "path": path}).encode("utf-8"),
                    "application/json",
                    status=404,
                )
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up beyond the socket

    def _stream_events(self) -> None:
        hub = self.server.hub
        subscription = hub.subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Access-Control-Allow-Origin", "*")
            self.end_headers()
            # Late-joiner catch-up: subscription first, snapshot second,
            # so the client's only risk is a duplicate seq, never a gap.
            self._write_sse("snapshot", {"snapshot": hub.snapshot()})
            while not self.server.stopping.is_set():
                event = subscription.pop(timeout=SSE_HEARTBEAT_SECONDS)
                if event is None:
                    # Heartbeat: keeps intermediaries from timing out the
                    # stream and surfaces a dead socket promptly.
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                self._write_sse(event.type, event.to_dict(), event_id=event.seq)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            subscription.close()

    def _write_sse(self, event_type: str, data: dict, event_id: Optional[int] = None) -> None:
        frame = "event: {}\n".format(event_type)
        if event_id is not None:
            frame += "id: {}\n".format(event_id)
        frame += "data: {}\n\n".format(json.dumps(data))
        self.wfile.write(frame.encode("utf-8"))
        self.wfile.flush()


class LiveServer:
    """Owns the HTTP server thread for one hub.

    ``port=0`` binds an ephemeral port; read :attr:`port`/:attr:`url`
    after :meth:`start`.  The server thread (and every SSE handler
    thread) is a daemon, so a process exit never hangs on a lingering
    consumer; :meth:`stop` shuts the listener down explicitly.
    """

    def __init__(
        self, hub: TelemetryHub, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.hub = hub
        self.host = host
        self._requested_port = port
        self._server: Optional[_LiveHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "LiveServer":
        """Bind and serve in a background daemon thread; returns self."""
        if self._server is not None:
            return self
        self._server = _LiveHTTPServer(
            (self.host, self._requested_port), LiveRequestHandler, self.hub
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-live-server",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def running(self) -> bool:
        """Whether the listener is up."""
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound port (the real one when constructed with port=0)."""
        if self._server is None:
            raise RuntimeError("LiveServer.start() has not been called")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the dashboard."""
        return "http://{}:{}/".format(self.host, self.port)

    def stop(self) -> None:
        """Stop accepting connections and wind down handler threads."""
        if self._server is None:
            return
        self._server.stopping.set()
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None
