"""A unified instrument registry: named counters, gauges and histograms.

Tempo-style continuous resource management needs *instrument-level*
monitoring — live counters every component publishes into one place — not
just the per-period aggregates the figures plot.  :class:`MetricsRegistry`
is that place: Dispatcher, Monitor, Planner, Solver, Patroller and the
workload detector register their instruments here, the control loop calls
:meth:`MetricsRegistry.sample` once per control interval to build time
series, and :meth:`MetricsRegistry.to_prometheus` renders the whole state
in the Prometheus text exposition format.

Instruments come in two flavours:

* **owned** — the component holds the instrument and mutates it
  (``counter.inc()``, ``gauge.set()``, ``histogram.observe()``); the
  dispatcher's released/completed/cancelled counters are owned;
* **callback** — the instrument reads a live value on demand
  (``callback=lambda: ...``); used to mirror existing component state
  (queue lengths, in-flight costs, solver call counts) without duplicating
  bookkeeping.

Instrument *families* share a name across label sets (one family
``dispatcher_enqueued_total``, one member per service class), which is
what makes the Prometheus rendering well-formed.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import MetricsError

#: Instrument kinds.
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelSet:
    return tuple(sorted((labels or {}).items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Inside double-quoted label values, backslash, double-quote and line
    feed must be escaped as ``\\\\``, ``\\"`` and ``\\n`` — a hostile
    value (say a query template containing quotes) must not break the
    rendered line or smuggle in extra labels.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text (only backslash and line feed are special)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    return "{" + ",".join(
        '{}="{}"'.format(k, _escape_label_value(v)) for k, v in labels
    ) + "}"


def _finite(value: float) -> float:
    value = float(value)
    return value if math.isfinite(value) else float("nan")


class Instrument:
    """Base class: one named, optionally labelled, measurable value."""

    kind = "abstract"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.callback = callback
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current value (invokes the callback for callback instruments)."""
        if self.callback is not None:
            return _finite(self.callback())
        return self._value

    def _require_owned(self, operation: str) -> None:
        if self.callback is not None:
            raise MetricsError(
                "{} {!r} is callback-backed; {} is not allowed".format(
                    self.kind, self.name, operation
                )
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "{}({}{})".format(
            type(self).__name__, self.name, _render_labels(self.labels)
        )


class Counter(Instrument):
    """Monotonically non-decreasing count."""

    kind = COUNTER

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        self._require_owned("inc()")
        if amount < 0:
            raise MetricsError(
                "counter {!r} cannot decrease (inc({}))".format(self.name, amount)
            )
        self._value += amount


class Gauge(Instrument):
    """A value that can go up and down."""

    kind = GAUGE

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._require_owned("set()")
        self._value = _finite(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self._require_owned("inc()")
        self._value += amount


class HistogramInstrument(Instrument):
    """Cumulative-bucket histogram of observations."""

    kind = HISTOGRAM

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricsError(
                "histogram {!r} needs sorted, non-empty buckets".format(name)
            )
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1

    @property
    def value(self) -> float:
        """Histograms sample as their observation count."""
        return float(self.count)

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts (Prometheus ``le`` semantics)."""
        return list(self.bucket_counts)


class _Family:
    """All instruments sharing one name (one per label set)."""

    __slots__ = ("name", "kind", "description", "unit", "members")

    def __init__(self, name: str, kind: str, description: str, unit: str) -> None:
        self.name = name
        self.kind = kind
        self.description = description
        self.unit = unit
        self.members: Dict[LabelSet, Instrument] = {}


class MetricsRegistry:
    """Get-or-create instrument registry with interval sampling.

    ``max_samples`` bounds the in-memory sampling time series as a ring
    buffer: once that many samples are held, each new :meth:`sample`
    evicts the oldest one and bumps :attr:`samples_dropped`.  The default
    (``None``) keeps every sample — the right behaviour for bounded sim
    runs — while long wall-clock serve-mode runs set a bound so a
    dashboard left up overnight cannot grow memory without limit.
    """

    def __init__(self, max_samples: Optional[int] = None) -> None:
        self._families: Dict[str, _Family] = {}
        self._samples: Deque[Tuple[float, Dict[str, float]]] = deque()
        self._max_samples: Optional[int] = None
        #: Samples evicted from the ring buffer so far (never resets).
        self.samples_dropped = 0
        self.max_samples = max_samples

    @property
    def max_samples(self) -> Optional[int]:
        """The ring-buffer bound (None = unbounded)."""
        return self._max_samples

    @max_samples.setter
    def max_samples(self, value: Optional[int]) -> None:
        if value is not None and (
            not isinstance(value, int) or isinstance(value, bool) or value < 1
        ):
            raise MetricsError(
                "max_samples must be a positive integer or None, got {!r}".format(
                    value
                )
            )
        self._max_samples = value
        if value is not None:
            while len(self._samples) > value:
                self._samples.popleft()
                self.samples_dropped += 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, description: str, unit: str) -> _Family:
        if not name or not name.replace("_", "a").isalnum():
            raise MetricsError(
                "instrument name {!r} must be non-empty [a-zA-Z0-9_]".format(name)
            )
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, description, unit)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise MetricsError(
                "instrument {!r} already registered as a {} (asked for a {})".format(
                    name, family.kind, kind
                )
            )
        if description and not family.description:
            family.description = description
        return family

    def counter(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        labels: Optional[Dict[str, str]] = None,
        callback: Optional[Callable[[], float]] = None,
    ) -> Counter:
        """Get or create the counter ``name`` with the given labels."""
        family = self._family(name, COUNTER, description, unit)
        key = _label_key(labels)
        member = family.members.get(key)
        if member is None:
            member = Counter(name, key, callback=callback)
            family.members[key] = member
        return member  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        labels: Optional[Dict[str, str]] = None,
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Get or create the gauge ``name`` with the given labels."""
        family = self._family(name, GAUGE, description, unit)
        key = _label_key(labels)
        member = family.members.get(key)
        if member is None:
            member = Gauge(name, key, callback=callback)
            family.members[key] = member
        return member  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramInstrument:
        """Get or create the histogram ``name`` with the given labels."""
        family = self._family(name, HISTOGRAM, description, unit)
        key = _label_key(labels)
        member = family.members.get(key)
        if member is None:
            member = HistogramInstrument(name, key, buckets=buckets)
            family.members[key] = member
        return member  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        """Registered family names, sorted."""
        return sorted(self._families)

    def __len__(self) -> int:
        return sum(len(f.members) for f in self._families.values())

    def __iter__(self) -> Iterator[Instrument]:
        for name in self.names:
            family = self._families[name]
            for key in sorted(family.members):
                yield family.members[key]

    def get(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Instrument:
        """Look up an existing instrument; raises :class:`MetricsError`."""
        family = self._families.get(name)
        if family is None:
            raise MetricsError(
                "unknown instrument {!r}; registered: {}".format(name, self.names)
            )
        key = _label_key(labels)
        member = family.members.get(key)
        if member is None:
            raise MetricsError(
                "instrument {!r} has no member with labels {}; members: {}".format(
                    name, dict(key), [dict(k) for k in family.members]
                )
            )
        return member

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @staticmethod
    def _series_key(name: str, labels: LabelSet) -> str:
        return name + _render_labels(labels)

    def sample(self, now: float) -> Dict[str, float]:
        """Snapshot every instrument's value at sim time ``now``.

        The snapshot is appended to the in-memory time series and returned.
        Histograms contribute their observation count and sum as
        ``name_count`` / ``name_sum`` entries.
        """
        values: Dict[str, float] = {}
        for instrument in self:
            key = self._series_key(instrument.name, instrument.labels)
            if isinstance(instrument, HistogramInstrument):
                values[key + "_count"] = float(instrument.count)
                values[key + "_sum"] = instrument.sum
            else:
                values[key] = instrument.value
        if (
            self._max_samples is not None
            and len(self._samples) >= self._max_samples
        ):
            self._samples.popleft()
            self.samples_dropped += 1
        self._samples.append((now, values))
        return values

    @property
    def samples(self) -> List[Tuple[float, Dict[str, float]]]:
        """All (time, snapshot) samples, in sampling order (a copy)."""
        return list(self._samples)

    def series(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> List[Tuple[float, float]]:
        """The sampled (time, value) series of one instrument."""
        self.get(name, labels)  # validates existence with a clear error
        key = self._series_key(name, _label_key(labels))
        out: List[Tuple[float, float]] = []
        for time, values in self._samples:
            if key in values:
                out.append((time, values[key]))
            elif key + "_count" in values:  # histogram member
                out.append((time, values[key + "_count"]))
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_prometheus(self, extra_labels: Optional[Dict[str, str]] = None) -> str:
        """Current instrument state in the Prometheus text format.

        ``extra_labels`` are merged into every rendered sample's label set
        (e.g. ``{"shard": "3"}`` for one member of a fleet); they must not
        collide with an instrument's own label names.
        """
        return render_prometheus([(extra_labels, self)])


def _render_member_lines(
    lines: List[str], name: str, member: Instrument, key: LabelSet
) -> None:
    """Append one member's sample lines (bucket/sum/count for histograms)."""
    if isinstance(member, HistogramInstrument):
        for bound, count in zip(member.buckets, member.cumulative_counts()):
            bucket_labels = key + (("le", repr(bound)),)
            lines.append(
                "{}_bucket{} {}".format(name, _render_labels(bucket_labels), count)
            )
        inf_labels = key + (("le", "+Inf"),)
        lines.append(
            "{}_bucket{} {}".format(name, _render_labels(inf_labels), member.count)
        )
        lines.append("{}_sum{} {}".format(name, _render_labels(key), member.sum))
        lines.append("{}_count{} {}".format(name, _render_labels(key), member.count))
    else:
        lines.append("{}{} {}".format(name, _render_labels(key), member.value))


def render_prometheus(
    sources: Sequence[Tuple[Optional[Dict[str, str]], "MetricsRegistry"]],
) -> str:
    """Render one or more registries as a single well-formed exposition.

    ``sources`` is a sequence of ``(extra_labels, registry)`` pairs; every
    sample from a registry carries its extra labels (typically a
    ``{"shard": "N"}`` discriminator), and each metric family appears
    exactly once — ``# HELP``/``# TYPE`` are emitted once per family name
    even when several registries expose it.  Registries disagreeing on a
    family's kind raise :class:`~repro.errors.MetricsError`; an extra
    label colliding with an instrument's own label does too.
    """
    names: List[str] = []
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for extra, registry in sources:
        for name in registry.names:
            family = registry._families[name]
            if name not in kinds:
                names.append(name)
                kinds[name] = family.kind
            elif kinds[name] != family.kind:
                raise MetricsError(
                    "family {!r} registered as a {} in one registry and a {} "
                    "in another; fleet rendering needs consistent kinds".format(
                        name, kinds[name], family.kind
                    )
                )
            if family.description and name not in helps:
                helps[name] = family.description
    lines: List[str] = []
    for name in sorted(names):
        if name in helps:
            lines.append("# HELP {} {}".format(name, _escape_help(helps[name])))
        lines.append("# TYPE {} {}".format(name, kinds[name]))
        for extra, registry in sources:
            family = registry._families.get(name)
            if family is None:
                continue
            extra_key = _label_key(extra)
            for key in sorted(family.members):
                member = family.members[key]
                if extra_key:
                    own = {k for k, _ in key}
                    clash = [k for k, _ in extra_key if k in own]
                    if clash:
                        raise MetricsError(
                            "extra labels {} collide with {!r}'s own labels".format(
                                clash, name
                            )
                        )
                    rendered_key = tuple(sorted(key + extra_key))
                else:
                    rendered_key = key
                _render_member_lines(lines, name, member, rendered_key)
    return "\n".join(lines) + ("\n" if lines else "")
