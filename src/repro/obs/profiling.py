"""Controller self-profiling: what the control loop itself costs.

The paper controls OLTP *indirectly* because per-query interception
overhead would exceed sub-second run times — an overhead argument the
original prototype never measures about itself.  This module measures it
for our controller: real wall-clock (``time.perf_counter``) spent in the
monitor / solver / dispatcher work of each control interval, kept strictly
separate from simulation time (sim time is virtual and free; wall time is
what a production deployment of this controller would actually burn).

:class:`IntervalProfiler` is deliberately tiny — ``begin()``, a
``section(name)`` context manager per timed stage, ``finish()`` — so the
planner can wrap its existing stages without restructuring.  Per-interval
results are dicts of ``<section>_s`` wall-second entries plus ``total_s``;
:func:`summarize_overhead` aggregates them to mean/max per section for the
``repro trace --summary`` overhead line and the telemetry export.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.errors import SimulationError
from repro.runtime import Clock, as_clock

#: Key suffix for per-section wall-clock seconds.
_SUFFIX = "_s"


class IntervalProfiler:
    """Wall-clock profiler for one recurring unit of controller work.

    Parameters
    ----------
    clock:
        Monotonic wall-clock source — a :class:`~repro.runtime.Clock` or a
        bare ``() -> float`` callable (coerced via
        :func:`~repro.runtime.as_clock`); injectable for deterministic
        tests.  Defaults to a fresh wall clock.  All profiler time reads go
        exclusively through this clock, never through a simulator.
    """

    def __init__(
        self, clock: Union[Clock, Callable[[], float], None] = None
    ) -> None:
        self.clock: Clock = as_clock(clock)
        self._current: Optional[Dict[str, float]] = None
        self._started_at = 0.0
        self.history: List[Dict[str, float]] = []

    def begin(self) -> None:
        """Start timing one interval's work."""
        if self._current is not None:
            raise SimulationError("profiler interval begun twice")
        self._current = {}
        self._started_at = self.clock.now

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time one named stage of the current interval.

        Re-entered sections accumulate (an early-triggered re-plan inside
        the same interval adds to the same key).
        """
        if self._current is None:
            raise SimulationError(
                "profiler section {!r} outside begin()/finish()".format(name)
            )
        key = name + _SUFFIX
        start = self.clock.now
        try:
            yield
        finally:
            self._current[key] = self._current.get(key, 0.0) + (
                self.clock.now - start
            )

    def finish(self) -> Dict[str, float]:
        """Close the interval; returns its ``{section_s: wall_seconds}``.

        The returned dict always carries ``total_s`` — the whole
        begin-to-finish wall time, bounding every section.
        """
        if self._current is None:
            raise SimulationError("profiler finish() without begin()")
        record = self._current
        self._current = None
        record["total_s"] = self.clock.now - self._started_at
        self.history.append(record)
        return dict(record)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Across-interval mean/max/count per section."""
        return summarize_overhead(self.history)


def summarize_overhead(
    records: List[Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Aggregate per-interval overhead dicts to mean/max/count per key.

    Accepts any iterable of ``{key: wall_seconds}`` dicts (the profiler's
    history, or the ``overhead`` sections of telemetry records) and skips
    keys absent from a record rather than counting them as zero.
    """
    sums: Dict[str, float] = {}
    maxima: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for record in records:
        for key, value in record.items():
            sums[key] = sums.get(key, 0.0) + value
            maxima[key] = max(maxima.get(key, value), value)
            counts[key] = counts.get(key, 0) + 1
    return {
        key: {
            "mean_s": sums[key] / counts[key],
            "max_s": maxima[key],
            "count": counts[key],
        }
        for key in sums
    }
