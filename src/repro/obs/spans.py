"""Per-query lifecycle spans.

The paper's central argument for *indirect* OLTP control is an overhead
argument: intercepting a sub-second statement costs more than running it
(Section 3).  Arguing about overhead requires knowing where a query's life
actually goes, so the tracer decomposes every traced statement into the
phases the adaptation mechanism adds around execution:

* ``intercept``  — submit to Query-Patroller interception (the added
  interception latency the paper measures in Section 3);
* ``queue_wait`` — held in a service-class queue awaiting release;
* ``execute``    — release to completion (the paper's execution time);

plus two zero-length *terminal* markers, ``cancelled`` and ``rejected``,
for statements that never complete.  A :class:`Span` is one phase of one
query with sim-time begin/end and enough identity (class, template, period,
timeron cost) to aggregate by any of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError

#: Lifecycle phases in their mandatory order.
PHASES = ("intercept", "queue_wait", "execute")

#: Terminal markers for queries that never complete (zero-length spans).
TERMINAL_PHASES = ("cancelled", "rejected")

#: Order index used to validate per-query phase sequencing.
_PHASE_ORDER = {name: index for index, name in enumerate(PHASES)}


@dataclass
class Span:
    """One phase of one query's life, in simulation time."""

    query_id: int
    class_name: str
    phase: str
    begin: float
    end: Optional[float] = None
    template: str = ""
    kind: str = ""
    estimated_cost: float = 0.0
    period: Optional[int] = None
    #: True when the span was force-closed at end of run (the simulation
    #: horizon arrived before the phase's natural end event).
    truncated: bool = False

    @property
    def closed(self) -> bool:
        """Whether the span has an end time."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in sim seconds (raises while still open)."""
        if self.end is None:
            raise SimulationError(
                "span {}/{} read before close".format(self.query_id, self.phase)
            )
        return self.end - self.begin

    def close(self, end: float, truncated: bool = False) -> "Span":
        """Close the span at ``end``; idempotent close is an error."""
        if self.end is not None:
            raise SimulationError(
                "span {}/{} closed twice".format(self.query_id, self.phase)
            )
        if end < self.begin:
            raise SimulationError(
                "span {}/{} closes at {} before its begin {}".format(
                    self.query_id, self.phase, end, self.begin
                )
            )
        self.end = end
        self.truncated = truncated
        return self

    def to_dict(self) -> Dict:
        """JSON-ready representation (one JSONL line)."""
        return {
            "query_id": self.query_id,
            "class": self.class_name,
            "phase": self.phase,
            "begin": self.begin,
            "end": self.end,
            "template": self.template,
            "kind": self.kind,
            "estimated_cost": self.estimated_cost,
            "period": self.period,
            "truncated": self.truncated,
        }

    @staticmethod
    def from_dict(data: Dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return Span(
            query_id=int(data["query_id"]),
            class_name=data["class"],
            phase=data["phase"],
            begin=float(data["begin"]),
            end=None if data.get("end") is None else float(data["end"]),
            template=data.get("template", ""),
            kind=data.get("kind", ""),
            estimated_cost=float(data.get("estimated_cost", 0.0)),
            period=data.get("period"),
            truncated=bool(data.get("truncated", False)),
        )


@dataclass
class PhaseStats:
    """Duration statistics for one (class, phase) cell."""

    class_name: str
    phase: str
    durations: List[float] = field(default_factory=list)

    def add(self, duration: float) -> None:
        """Fold in one span's duration."""
        self.durations.append(duration)

    @property
    def count(self) -> int:
        """Number of spans aggregated."""
        return len(self.durations)

    @property
    def mean(self) -> float:
        """Mean duration (0 when empty)."""
        return sum(self.durations) / len(self.durations) if self.durations else 0.0

    @property
    def max(self) -> float:
        """Longest duration (0 when empty)."""
        return max(self.durations) if self.durations else 0.0

    def percentile(self, q: float) -> float:
        """Duration percentile ``q`` in [0, 100] (nearest-rank, 0 if empty)."""
        if not self.durations:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise SimulationError("percentile needs q in [0, 100], got {}".format(q))
        ordered = sorted(self.durations)
        rank = int(round(q / 100.0 * (len(ordered) - 1)))
        return ordered[rank]

    def to_dict(self) -> Dict:
        """JSON-ready summary (count/mean/p50/p95/max)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "max": self.max,
        }


def phase_breakdown(spans: Sequence[Span]) -> Dict[str, Dict[str, PhaseStats]]:
    """Per-class, per-phase duration statistics over closed spans.

    Terminal markers (zero-length) are excluded — they carry no duration
    signal, only the fact of abandonment.
    """
    cells: Dict[str, Dict[str, PhaseStats]] = {}
    for span in spans:
        if span.phase in TERMINAL_PHASES or span.end is None:
            continue
        by_phase = cells.setdefault(span.class_name, {})
        stats = by_phase.get(span.phase)
        if stats is None:
            stats = PhaseStats(span.class_name, span.phase)
            by_phase[span.phase] = stats
        stats.add(span.duration)
    return cells


def slowest_spans(
    spans: Sequence[Span], phase: str = "queue_wait", n: int = 5
) -> List[Span]:
    """The ``n`` longest closed spans of one phase, longest first."""
    candidates = [s for s in spans if s.phase == phase and s.end is not None]
    candidates.sort(key=lambda s: s.duration, reverse=True)
    return candidates[:n]


def validate_spans(spans: Sequence[Span]) -> List[str]:
    """Strict structural checks over a span set; returns problem strings.

    Verified invariants:

    * every span is closed with ``end >= begin``;
    * per query, lifecycle phases appear at most once and in order
      (``intercept`` before ``queue_wait`` before ``execute``), without
      overlapping in time;
    * per query, at most one terminal marker, and a query with a terminal
      marker has no span beginning after it.
    """
    problems: List[str] = []
    by_query: Dict[int, List[Span]] = {}
    for span in spans:
        by_query.setdefault(span.query_id, []).append(span)
        if span.end is None:
            problems.append(
                "query {} span {!r} never closed".format(span.query_id, span.phase)
            )
        elif span.end < span.begin:
            problems.append(
                "query {} span {!r} ends ({}) before it begins ({})".format(
                    span.query_id, span.phase, span.end, span.begin
                )
            )
        if span.phase not in PHASES and span.phase not in TERMINAL_PHASES:
            problems.append(
                "query {} has unknown phase {!r}".format(span.query_id, span.phase)
            )
    for query_id, query_spans in by_query.items():
        lifecycle = [s for s in query_spans if s.phase in PHASES]
        lifecycle.sort(key=lambda s: s.begin)
        seen: List[str] = []
        for span in lifecycle:
            if span.phase in seen:
                problems.append(
                    "query {} repeats phase {!r}".format(query_id, span.phase)
                )
            seen.append(span.phase)
        order = [_PHASE_ORDER[s.phase] for s in lifecycle]
        if order != sorted(order):
            problems.append(
                "query {} phases out of order: {}".format(
                    query_id, [s.phase for s in lifecycle]
                )
            )
        for earlier, later in zip(lifecycle, lifecycle[1:]):
            if earlier.end is not None and earlier.end > later.begin:
                problems.append(
                    "query {} span {!r} overlaps {!r}".format(
                        query_id, earlier.phase, later.phase
                    )
                )
        terminals = [s for s in query_spans if s.phase in TERMINAL_PHASES]
        if len(terminals) > 1:
            problems.append(
                "query {} has {} terminal markers".format(query_id, len(terminals))
            )
        if terminals:
            cutoff = terminals[0].begin
            for span in lifecycle:
                if span.begin > cutoff:
                    problems.append(
                        "query {} span {!r} begins after its terminal marker".format(
                            query_id, span.phase
                        )
                    )
    return problems
