"""Span export: JSONL and Chrome trace-event JSON.

Two interchange formats:

* **JSONL** — one :meth:`Span.to_dict` per line; lossless, round-trips
  through :func:`load_spans_jsonl`.
* **Chrome trace-event JSON** — a ``{"traceEvents": [...]}`` document
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Each service class renders as one process (named via metadata events),
  each query as one thread within it, lifecycle spans as complete events
  (``"ph": "X"``) and terminal cancel/reject markers as instant events
  (``"ph": "i"``).  Sim seconds map to trace microseconds.

:func:`load_spans` dispatches on path shape (directory / ``.jsonl`` /
``.json``) so the ``repro spans`` command can summarise either format.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

from repro.errors import ExportError, SimulationError
from repro.obs.spans import Span, TERMINAL_PHASES

#: Trace-event timestamps are microseconds; sim time is seconds.
_US = 1e6


def _open_for_export(path: str, overwrite: bool):
    """Open ``path`` for writing, refusing to clobber unless ``overwrite``."""
    if not overwrite and os.path.exists(path):
        raise ExportError(
            "span export target {!r} already exists; pass overwrite=True "
            "to replace it".format(path)
        )
    return open(path, "w")


def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """All spans as JSON Lines text (one span per line)."""
    return "".join(json.dumps(span.to_dict()) + "\n" for span in spans)


def save_spans_jsonl(
    spans: Sequence[Span], path: str, overwrite: bool = False
) -> None:
    """Write the JSONL export to ``path``.

    Raises :class:`~repro.errors.ExportError` when ``path`` exists and
    ``overwrite`` is False — multi-shard runs exporting into one
    directory must never silently truncate a sibling's spans.
    """
    with _open_for_export(path, overwrite) as handle:
        handle.write(spans_to_jsonl(spans))


def load_spans_jsonl(path: str) -> List[Span]:
    """Read back a JSONL export."""
    with open(path) as handle:
        return [Span.from_dict(json.loads(line)) for line in handle if line.strip()]


def spans_to_chrome(spans: Sequence[Span]) -> Dict:
    """Spans as a Chrome trace-event document (Perfetto-loadable dict)."""
    events: List[Dict] = []
    class_pids: Dict[str, int] = {}
    for span in spans:
        pid = class_pids.get(span.class_name)
        if pid is None:
            pid = len(class_pids) + 1
            class_pids[span.class_name] = pid
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": span.class_name},
                }
            )
        args = {
            "query_id": span.query_id,
            "class": span.class_name,
            "template": span.template,
            "kind": span.kind,
            "estimated_cost": span.estimated_cost,
            "period": span.period,
            "truncated": span.truncated,
            # Exact sim-time endpoints: ts/dur are microsecond-rounded for
            # the viewer, which is lossy enough to create phantom overlaps
            # on reload.
            "begin": span.begin,
            "end": span.end,
        }
        base = {
            "pid": pid,
            "tid": span.query_id,
            "ts": span.begin * _US,
            "name": span.phase,
            "cat": span.class_name,
            "args": args,
        }
        if span.phase in TERMINAL_PHASES:
            base.update({"ph": "i", "s": "t"})
        else:
            end = span.end if span.end is not None else span.begin
            base.update({"ph": "X", "dur": (end - span.begin) * _US})
        events.append(base)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(
    spans: Sequence[Span], path: str, overwrite: bool = False
) -> None:
    """Write the Chrome trace-event document to ``path`` as JSON.

    Same overwrite protection as :func:`save_spans_jsonl`.
    """
    with _open_for_export(path, overwrite) as handle:
        json.dump(spans_to_chrome(spans), handle)


def load_chrome_trace(path: str) -> List[Span]:
    """Rebuild spans from a Chrome trace-event export.

    Only events this module wrote are understood (complete events carry
    their full span identity in ``args``); metadata events are skipped.
    """
    with open(path) as handle:
        document = json.load(handle)
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise SimulationError(
            "{} is not a trace-event document (no traceEvents list)".format(path)
        )
    spans: List[Span] = []
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "i"):
            continue
        args = event.get("args", {})
        if "begin" in args:
            begin = float(args["begin"])
            end = begin if args.get("end") is None else float(args["end"])
        else:
            begin = event["ts"] / _US
            if phase == "X":
                end = begin + event.get("dur", 0.0) / _US
            else:
                end = begin
        span = Span(
            query_id=int(args.get("query_id", event.get("tid", 0))),
            class_name=args.get("class", event.get("cat", "")),
            phase=event["name"],
            begin=begin,
            template=args.get("template", ""),
            kind=args.get("kind", ""),
            estimated_cost=float(args.get("estimated_cost", 0.0)),
            period=args.get("period"),
        )
        span.close(end, truncated=bool(args.get("truncated", False)))
        spans.append(span)
    return spans


def load_spans(path: str) -> List[Span]:
    """Load spans from a JSONL file, a trace-event JSON, or a directory.

    A directory is searched for ``spans.jsonl`` first, then ``trace.json``,
    then any single ``*.jsonl`` / ``*.json`` file it contains.
    """
    if os.path.isdir(path):
        for name in ("spans.jsonl", "trace.json"):
            candidate = os.path.join(path, name)
            if os.path.exists(candidate):
                return load_spans(candidate)
        entries = sorted(os.listdir(path))
        for suffix in (".jsonl", ".json"):
            matches = [e for e in entries if e.endswith(suffix)]
            if len(matches) == 1:
                return load_spans(os.path.join(path, matches[0]))
        raise SimulationError(
            "no spans.jsonl or trace.json found under {}".format(path)
        )
    if path.endswith(".jsonl"):
        return load_spans_jsonl(path)
    return load_chrome_trace(path)
