"""Virtual-time processor-sharing resources.

The database server is modelled as a small set of multi-server
processor-sharing (PS) pools: a CPU pool (2 servers in the paper's xSeries
240) and a disk pool (17 servers).  With ``n`` jobs in service on a pool of
``m`` servers, every job progresses at::

    rate = speed * min(1, m / n) * efficiency

i.e. jobs run at full speed while there are idle servers and share equally
once the pool is saturated.  ``efficiency`` is an externally supplied
multiplier used by the overload model (:mod:`repro.dbms.overload`) to model
thrashing past the saturation knee.

Simulating PS naively costs O(n) per arrival/departure because every
remaining service time changes.  We instead integrate a per-pool *virtual
time* ``v(t)`` whose derivative is the common per-job rate.  A job arriving
with demand ``d`` then completes exactly when ``v`` reaches ``v_arrival + d``
— a constant — so completions live in an ordinary min-heap keyed by finish
virtual time, and every state change costs O(log n).
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import ulp
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import Event

#: Relative tolerance used when deciding whether a job's finish virtual time
#: has been reached.  The completion slack for a head job is
#: ``_EPS * (1 + demand)`` — proportional to the job's own demand — plus a
#: few ulps of the current virtual time to absorb the integrator's
#: accumulation error.  (An *absolute* ``vtime * _EPS`` slack, as used
#: before, grows without bound on long runs and eventually completes jobs
#: with real demand remaining.)
_EPS = 1e-9

#: Integrator-error allowance in ulps of the current virtual time.
_ULPS = 16.0

#: Completion-heap entries: ``(finish_vtime, seq, job)`` tuples compare at
#: C speed; seq is unique so the job object itself never compares.
_JobEntry = Tuple[float, int, "PSJob"]


class PSJob:
    """One unit of work in service on a :class:`ProcessorSharingResource`.

    Parameters
    ----------
    name:
        Diagnostic label.
    demand:
        Service demand in seconds-at-full-speed.  Must be non-negative.
    on_complete:
        Callback invoked (with the job) when service finishes.
    """

    __slots__ = (
        "name",
        "demand",
        "on_complete",
        "finish_vtime",
        "seq",
        "cancelled",
        "start_time",
        "finish_time",
    )

    def __init__(
        self,
        name: str,
        demand: float,
        on_complete: Optional[Callable[["PSJob"], None]] = None,
    ) -> None:
        if demand < 0:
            raise SimulationError("PSJob {!r} has negative demand {}".format(name, demand))
        self.name = name
        self.demand = float(demand)
        self.on_complete = on_complete
        self.finish_vtime = 0.0
        self.seq = 0
        self.cancelled = False
        self.start_time = 0.0
        self.finish_time: Optional[float] = None

    def __lt__(self, other: "PSJob") -> bool:
        return (self.finish_vtime, self.seq) < (other.finish_vtime, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PSJob({!r}, demand={:.6f})".format(self.name, self.demand)


class ProcessorSharingResource:
    """An egalitarian multi-server processor-sharing pool.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Pool name (used in event labels and traces).
    servers:
        Number of servers; with fewer jobs than servers every job runs at
        full speed.
    speed:
        Speed multiplier applied to every job (default 1.0).
    """

    def __init__(self, sim: Simulator, name: str, servers: int, speed: float = 1.0) -> None:
        if servers < 1:
            raise SimulationError("resource {!r} needs >= 1 server".format(name))
        if speed <= 0:
            raise SimulationError("resource {!r} needs positive speed".format(name))
        self.sim = sim
        self.name = name
        self.servers = int(servers)
        self.speed = float(speed)
        self._efficiency = 1.0
        self._vtime = 0.0
        self._vtime_updated_at = sim.now
        self._heap: List[_JobEntry] = []
        self._njobs = 0
        self._seq = 0
        self._timer: Optional[Event] = None
        # (head job seq, per-job rate) the armed timer was computed for:
        # while both are unchanged the timer's absolute fire time is still
        # exact, so state changes that touch neither can keep it armed.
        self._timer_key: Optional[Tuple[int, float]] = None
        self._complete_label = "ps:{}:complete".format(name)
        # Statistics.
        self._start_time = sim.now
        self._completed_jobs = 0
        self._completed_demand = 0.0
        self._busy_integral = 0.0  # integral of min(njobs, servers) over time
        self._jobs_integral = 0.0  # integral of njobs over time
        self._last_stat_time = sim.now

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service."""
        return self._njobs

    @property
    def efficiency(self) -> float:
        """Current externally supplied efficiency multiplier."""
        return self._efficiency

    @property
    def completed_jobs(self) -> int:
        """Total jobs that finished service on this pool."""
        return self._completed_jobs

    @property
    def completed_demand(self) -> float:
        """Total service demand (seconds-at-full-speed) completed."""
        return self._completed_demand

    def per_job_rate(self) -> float:
        """The rate at which every in-service job currently progresses."""
        if self._njobs == 0:
            return self.speed * self._efficiency
        share = min(1.0, self.servers / self._njobs)
        return self.speed * share * self._efficiency

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Average fraction of servers busy since this resource was built.

        ``horizon``, when given, is the averaging window length measured
        from the resource's construction time; it may extend *past* the
        current instant (idle tail included in the average) but never fall
        short of it — busy time is integrated up to ``sim.now``, so a
        shorter window would report utilization above 1.0.  A stale
        horizon raises :class:`~repro.errors.SimulationError`.
        """
        self._accumulate_stats()
        elapsed = self.sim.now - self._start_time
        if horizon is not None:
            if horizon < elapsed:
                raise SimulationError(
                    "stale horizon {} for resource {!r}: busy time is "
                    "integrated over {} seconds already".format(
                        horizon, self.name, elapsed
                    )
                )
            elapsed = horizon
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.servers)

    def mean_jobs_in_service(self) -> float:
        """Time-averaged number of jobs in service since construction."""
        self._accumulate_stats()
        elapsed = self.sim.now - self._start_time
        if elapsed <= 0:
            return 0.0
        return self._jobs_integral / elapsed

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def submit(self, job: PSJob) -> PSJob:
        """Begin service for ``job`` immediately.

        PS has no waiting room: admission control lives above this layer (the
        Query Patroller / dispatcher decide *when* work reaches the pools).
        """
        # _advance() and _reschedule() inlined: submit is (with _on_timer)
        # one of the two hottest entry points in the simulator, and the two
        # call round-trips are measurable at replication scale.  The
        # arithmetic must stay identical to the out-of-line twins.
        now = self.sim.now
        if now != self._vtime_updated_at or now != self._last_stat_time:
            njobs = self._njobs
            dt = now - self._last_stat_time
            if dt > 0:
                busy = njobs if njobs < self.servers else self.servers
                self._busy_integral += busy * dt
                self._jobs_integral += njobs * dt
                self._last_stat_time = now
            dt = now - self._vtime_updated_at
            if dt > 0 and njobs > 0:
                if njobs <= self.servers:
                    self._vtime += dt * (self.speed * self._efficiency)
                else:
                    self._vtime += dt * (self.speed * (self.servers / njobs) * self._efficiency)
            self._vtime_updated_at = now
        seq = self._seq
        self._seq = seq + 1
        job.seq = seq
        job.start_time = now
        finish = self._vtime + job.demand
        job.finish_vtime = finish
        heap = self._heap
        heappush(heap, (finish, seq, job))
        njobs = self._njobs + 1
        self._njobs = njobs
        # Inline _reschedule().
        while heap and heap[0][2].cancelled:
            heappop(heap)
        if njobs <= self.servers:
            rate = self.speed * self._efficiency
        else:
            rate = self.speed * (self.servers / njobs) * self._efficiency
        if rate <= 0:  # pragma: no cover - efficiency is validated positive
            raise SimulationError("resource {!r} stalled at rate 0".format(self.name))
        key = (heap[0][1], rate)
        timer = self._timer
        if timer is not None:
            if key == self._timer_key:
                return job
            timer.cancel()
        remaining_v = heap[0][0] - self._vtime
        delay = remaining_v / rate if remaining_v > 0.0 else 0.0
        self._timer = self.sim.schedule(delay, self._on_timer, self._complete_label)
        self._timer_key = key
        return job

    def cancel(self, job: PSJob) -> bool:
        """Abort an in-service job; returns False if already done/cancelled."""
        if job.cancelled or job.finish_time is not None:
            return False
        self._advance()
        job.cancelled = True
        self._njobs -= 1
        self._reschedule()
        return True

    def remaining_demand(self, job: PSJob) -> float:
        """Service demand the job still has to receive (0 when done)."""
        if job.finish_time is not None or job.cancelled:
            return 0.0
        self._advance()
        return max(0.0, job.finish_vtime - self._vtime)

    def set_efficiency(self, efficiency: float) -> None:
        """Install a new efficiency multiplier (from the overload model)."""
        if efficiency <= 0:
            raise SimulationError(
                "resource {!r} efficiency must stay positive (got {})".format(
                    self.name, efficiency
                )
            )
        if efficiency == self._efficiency:
            return
        self._advance()
        self._efficiency = float(efficiency)
        self._reschedule()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _accumulate_stats(self) -> None:
        now = self.sim.now
        dt = now - self._last_stat_time
        if dt > 0:
            njobs = self._njobs
            busy = njobs if njobs < self.servers else self.servers
            self._busy_integral += busy * dt
            self._jobs_integral += njobs * dt
            self._last_stat_time = now

    def _advance(self) -> None:
        """Integrate virtual time and statistics up to the current instant."""
        now = self.sim.now
        if now == self._vtime_updated_at and now == self._last_stat_time:
            # Already integrated to this instant (several state changes in
            # one event cascade share a timestamp).
            return
        njobs = self._njobs
        dt = now - self._last_stat_time
        if dt > 0:
            busy = njobs if njobs < self.servers else self.servers
            self._busy_integral += busy * dt
            self._jobs_integral += njobs * dt
            self._last_stat_time = now
        dt = now - self._vtime_updated_at
        if dt > 0 and njobs > 0:
            # Inline per_job_rate(): this integrator is the hottest code
            # in the simulator (expression order is load-bearing for
            # bit-reproducibility — keep it identical to per_job_rate,
            # including the branched share: multiplying by an exact 1.0
            # preserves the other factors bit-for-bit).
            if njobs <= self.servers:
                self._vtime += dt * (self.speed * self._efficiency)
            else:
                self._vtime += dt * (self.speed * (self.servers / njobs) * self._efficiency)
        self._vtime_updated_at = now

    def _reschedule(self) -> None:
        """(Re-)arm the completion timer for the earliest-finishing job.

        Kept as-is when the head job and the per-job rate are both
        unchanged: the armed timer's absolute fire time is then still the
        head's exact completion instant, and skipping the cancel+schedule
        round-trip avoids the tombstone churn that used to dominate the
        event heap.
        """
        # Drop tombstones so the heap head is a live job.
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
        if not heap:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
                self._timer_key = None
            return
        njobs = self._njobs
        if njobs <= self.servers:
            rate = self.speed * self._efficiency
        else:
            rate = self.speed * (self.servers / njobs) * self._efficiency
        if rate <= 0:  # pragma: no cover - efficiency is validated positive
            raise SimulationError("resource {!r} stalled at rate 0".format(self.name))
        key = (heap[0][1], rate)
        if self._timer is not None:
            if key == self._timer_key:
                return
            self._timer.cancel()
        remaining_v = heap[0][0] - self._vtime
        delay = remaining_v / rate if remaining_v > 0.0 else 0.0
        self._timer = self.sim.schedule(delay, self._on_timer, self._complete_label)
        self._timer_key = key

    def _on_timer(self) -> None:
        self._timer = None
        # _advance() inlined (see submit() for why; arithmetic must stay
        # identical to the out-of-line twin).
        now = self.sim.now
        if now != self._vtime_updated_at or now != self._last_stat_time:
            njobs = self._njobs
            dt = now - self._last_stat_time
            if dt > 0:
                busy = njobs if njobs < self.servers else self.servers
                self._busy_integral += busy * dt
                self._jobs_integral += njobs * dt
                self._last_stat_time = now
            dt = now - self._vtime_updated_at
            if dt > 0 and njobs > 0:
                if njobs <= self.servers:
                    self._vtime += dt * (self.speed * self._efficiency)
                else:
                    self._vtime += dt * (self.speed * (self.servers / njobs) * self._efficiency)
            self._vtime_updated_at = now
        vtime = self._vtime
        drift = _ULPS * ulp(vtime)
        finished: List[PSJob] = []
        heap = self._heap
        while heap:
            head = heap[0][2]
            if head.cancelled:
                heappop(heap)
                continue
            if head.finish_vtime - vtime <= _EPS * (1.0 + head.demand) + drift:
                heappop(heap)
                finished.append(head)
                continue
            break
        if not finished:
            # Spurious wake-up (e.g. rate changed); just re-arm.
            self._reschedule()
            return
        self._njobs -= len(finished)
        for job in finished:
            job.finish_time = now
            job.cancelled = True  # block late cancel() calls
            self._completed_demand += job.demand
        self._completed_jobs += len(finished)
        # Re-arm before invoking callbacks: callbacks may submit new work.
        self._reschedule()
        for job in finished:
            if job.on_complete is not None:
                job.on_complete(job)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ProcessorSharingResource({!r}, servers={}, jobs={})".format(
            self.name, self.servers, self._njobs
        )
