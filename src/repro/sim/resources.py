"""Virtual-time processor-sharing resources.

The database server is modelled as a small set of multi-server
processor-sharing (PS) pools: a CPU pool (2 servers in the paper's xSeries
240) and a disk pool (17 servers).  With ``n`` jobs in service on a pool of
``m`` servers, every job progresses at::

    rate = speed * min(1, m / n) * efficiency

i.e. jobs run at full speed while there are idle servers and share equally
once the pool is saturated.  ``efficiency`` is an externally supplied
multiplier used by the overload model (:mod:`repro.dbms.overload`) to model
thrashing past the saturation knee.

Simulating PS naively costs O(n) per arrival/departure because every
remaining service time changes.  We instead integrate a per-pool *virtual
time* ``v(t)`` whose derivative is the common per-job rate.  A job arriving
with demand ``d`` then completes exactly when ``v`` reaches ``v_arrival + d``
— a constant — so completions live in an ordinary min-heap keyed by finish
virtual time, and every state change costs O(log n).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle

#: Relative tolerance used when deciding whether a job's finish virtual time
#: has been reached.  Guards against floating-point drift in the integrator.
_EPS = 1e-9


class PSJob:
    """One unit of work in service on a :class:`ProcessorSharingResource`.

    Parameters
    ----------
    name:
        Diagnostic label.
    demand:
        Service demand in seconds-at-full-speed.  Must be non-negative.
    on_complete:
        Callback invoked (with the job) when service finishes.
    """

    __slots__ = (
        "name",
        "demand",
        "on_complete",
        "finish_vtime",
        "seq",
        "cancelled",
        "start_time",
        "finish_time",
    )

    def __init__(
        self,
        name: str,
        demand: float,
        on_complete: Optional[Callable[["PSJob"], None]] = None,
    ) -> None:
        if demand < 0:
            raise SimulationError("PSJob {!r} has negative demand {}".format(name, demand))
        self.name = name
        self.demand = float(demand)
        self.on_complete = on_complete
        self.finish_vtime = 0.0
        self.seq = 0
        self.cancelled = False
        self.start_time = 0.0
        self.finish_time: Optional[float] = None

    def __lt__(self, other: "PSJob") -> bool:
        return (self.finish_vtime, self.seq) < (other.finish_vtime, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PSJob({!r}, demand={:.6f})".format(self.name, self.demand)


class ProcessorSharingResource:
    """An egalitarian multi-server processor-sharing pool.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Pool name (used in event labels and traces).
    servers:
        Number of servers; with fewer jobs than servers every job runs at
        full speed.
    speed:
        Speed multiplier applied to every job (default 1.0).
    """

    def __init__(self, sim: Simulator, name: str, servers: int, speed: float = 1.0) -> None:
        if servers < 1:
            raise SimulationError("resource {!r} needs >= 1 server".format(name))
        if speed <= 0:
            raise SimulationError("resource {!r} needs positive speed".format(name))
        self.sim = sim
        self.name = name
        self.servers = int(servers)
        self.speed = float(speed)
        self._efficiency = 1.0
        self._vtime = 0.0
        self._vtime_updated_at = sim.now
        self._heap: List[PSJob] = []
        self._njobs = 0
        self._seq = 0
        self._timer: Optional[EventHandle] = None
        # Statistics.
        self._completed_jobs = 0
        self._completed_demand = 0.0
        self._busy_integral = 0.0  # integral of min(njobs, servers) over time
        self._jobs_integral = 0.0  # integral of njobs over time
        self._last_stat_time = sim.now

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service."""
        return self._njobs

    @property
    def efficiency(self) -> float:
        """Current externally supplied efficiency multiplier."""
        return self._efficiency

    @property
    def completed_jobs(self) -> int:
        """Total jobs that finished service on this pool."""
        return self._completed_jobs

    @property
    def completed_demand(self) -> float:
        """Total service demand (seconds-at-full-speed) completed."""
        return self._completed_demand

    def per_job_rate(self) -> float:
        """The rate at which every in-service job currently progresses."""
        if self._njobs == 0:
            return self.speed * self._efficiency
        share = min(1.0, self.servers / self._njobs)
        return self.speed * share * self._efficiency

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Average fraction of servers busy since the start of the run."""
        self._accumulate_stats()
        elapsed = horizon if horizon is not None else self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.servers)

    def mean_jobs_in_service(self) -> float:
        """Time-averaged number of jobs in service."""
        self._accumulate_stats()
        if self.sim.now <= 0:
            return 0.0
        return self._jobs_integral / self.sim.now

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def submit(self, job: PSJob) -> PSJob:
        """Begin service for ``job`` immediately.

        PS has no waiting room: admission control lives above this layer (the
        Query Patroller / dispatcher decide *when* work reaches the pools).
        """
        self._advance()
        job.seq = self._seq
        self._seq += 1
        job.start_time = self.sim.now
        job.finish_vtime = self._vtime + job.demand
        heapq.heappush(self._heap, job)
        self._njobs += 1
        self._reschedule()
        return job

    def cancel(self, job: PSJob) -> bool:
        """Abort an in-service job; returns False if already done/cancelled."""
        if job.cancelled or job.finish_time is not None:
            return False
        self._advance()
        job.cancelled = True
        self._njobs -= 1
        self._reschedule()
        return True

    def remaining_demand(self, job: PSJob) -> float:
        """Service demand the job still has to receive (0 when done)."""
        if job.finish_time is not None or job.cancelled:
            return 0.0
        self._advance()
        return max(0.0, job.finish_vtime - self._vtime)

    def set_efficiency(self, efficiency: float) -> None:
        """Install a new efficiency multiplier (from the overload model)."""
        if efficiency <= 0:
            raise SimulationError(
                "resource {!r} efficiency must stay positive (got {})".format(
                    self.name, efficiency
                )
            )
        if efficiency == self._efficiency:
            return
        self._advance()
        self._efficiency = float(efficiency)
        self._reschedule()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _accumulate_stats(self) -> None:
        dt = self.sim.now - self._last_stat_time
        if dt > 0:
            self._busy_integral += min(self._njobs, self.servers) * dt
            self._jobs_integral += self._njobs * dt
            self._last_stat_time = self.sim.now

    def _advance(self) -> None:
        """Integrate virtual time up to the current instant."""
        self._accumulate_stats()
        now = self.sim.now
        dt = now - self._vtime_updated_at
        if dt > 0 and self._njobs > 0:
            self._vtime += dt * self.per_job_rate()
        self._vtime_updated_at = now

    def _reschedule(self) -> None:
        """(Re-)arm the completion timer for the earliest-finishing job."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        # Drop tombstones so the heap head is a live job.
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return
        head = self._heap[0]
        rate = self.per_job_rate()
        if rate <= 0:  # pragma: no cover - efficiency is validated positive
            raise SimulationError("resource {!r} stalled at rate 0".format(self.name))
        remaining_v = max(0.0, head.finish_vtime - self._vtime)
        delay = remaining_v / rate
        self._timer = self.sim.schedule(
            delay, self._on_timer, label="ps:{}:complete".format(self.name)
        )

    def _on_timer(self) -> None:
        self._timer = None
        self._advance()
        threshold = self._vtime * (1.0 + _EPS) + _EPS
        finished: List[PSJob] = []
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.finish_vtime <= threshold:
                heapq.heappop(self._heap)
                finished.append(head)
                continue
            break
        if not finished:
            # Spurious wake-up (e.g. rate changed); just re-arm.
            self._reschedule()
            return
        self._njobs -= len(finished)
        for job in finished:
            job.finish_time = self.sim.now
            job.cancelled = True  # block late cancel() calls
            self._completed_jobs += 1
            self._completed_demand += job.demand
        # Re-arm before invoking callbacks: callbacks may submit new work.
        self._reschedule()
        for job in finished:
            if job.on_complete is not None:
                job.on_complete(job)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ProcessorSharingResource({!r}, servers={}, jobs={})".format(
            self.name, self.servers, self._njobs
        )
