"""Event records for the discrete-event simulator.

An :class:`Event` couples a firing time with a zero-argument callback.  Events
are totally ordered by ``(time, priority, sequence)`` so that simultaneous
events fire in a deterministic order: first by explicit priority (lower fires
first), then by scheduling order.

Cancellation is handled through :class:`EventHandle` using the standard
"tombstone" idiom: cancelling marks the event dead and the engine skips dead
events when it pops them, which keeps cancellation O(1).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

#: Default event priority.  Most events use this; ties break on sequence.
DEFAULT_PRIORITY = 0


class Event:
    """A scheduled callback inside the simulation.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule` and
    returned to the caller directly: an event is its own cancellation
    handle (it satisfies the ``TimerHandle`` protocol), so scheduling costs
    a single allocation.  :class:`EventHandle` remains as a thin wrapper
    for code that wants an explicit handle type.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled", "owner")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
        owner: Optional[Any] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.owner = owner

    def sort_key(self) -> tuple:
        """Total order used by the event heap."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        return not self.cancelled

    def cancel(self) -> bool:
        """Cancel the event if still pending.

        Returns True if this call cancelled the event, False if it was
        already cancelled or has already fired (fired events are marked
        cancelled by the engine as they execute).  The owning simulator,
        when set, is notified so it can compact tombstones.
        """
        if self.cancelled:
            return False
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        label = self.label or self.callback
        return "Event(t={:.6f}, prio={}, seq={}, {}, {})".format(
            self.time, self.priority, self.seq, label, state
        )


class EventHandle:
    """Cancellable reference to a scheduled event.

    ``owner`` (normally the scheduling :class:`~repro.sim.engine.Simulator`)
    is notified of successful cancellations so it can compact tombstones
    out of its heap once they accumulate; a bare handle without an owner
    still cancels fine.
    """

    __slots__ = ("_event", "_owner")

    def __init__(self, event: Event, owner: Optional[Any] = None) -> None:
        self._event = event
        self._owner = owner

    @property
    def time(self) -> float:
        """The simulation time at which the event will fire."""
        return self._event.time

    @property
    def label(self) -> str:
        """The diagnostic label attached at scheduling time."""
        return self._event.label

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        return not self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event if still pending.

        Returns True if this call cancelled the event, False if it was
        already cancelled or has already fired (fired events are marked
        cancelled by the engine as they execute).
        """
        event = self._event
        if event.cancelled:
            return False
        if event.owner is not None:
            # The event knows its simulator; let it do the notification.
            return event.cancel()
        event.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()
        return True

    def _raw(self) -> Optional[Event]:
        return self._event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EventHandle({!r})".format(self._event)
