"""Event records for the discrete-event simulator.

An :class:`Event` couples a firing time with a zero-argument callback.  Events
are totally ordered by ``(time, priority, sequence)`` so that simultaneous
events fire in a deterministic order: first by explicit priority (lower fires
first), then by scheduling order.

Cancellation is handled through :class:`EventHandle` using the standard
"tombstone" idiom: cancelling marks the event dead and the engine skips dead
events when it pops them, which keeps cancellation O(1).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

#: Default event priority.  Most events use this; ties break on sequence.
DEFAULT_PRIORITY = 0


class Event:
    """A scheduled callback inside the simulation.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule`; user
    code normally only sees the :class:`EventHandle` wrapper.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def sort_key(self) -> tuple:
        """Total order used by the event heap."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        label = self.label or self.callback
        return "Event(t={:.6f}, prio={}, seq={}, {}, {})".format(
            self.time, self.priority, self.seq, label, state
        )


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The simulation time at which the event will fire."""
        return self._event.time

    @property
    def label(self) -> str:
        """The diagnostic label attached at scheduling time."""
        return self._event.label

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        return not self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event if still pending.

        Returns True if this call cancelled the event, False if it was
        already cancelled or has already fired (fired events are marked
        cancelled by the engine as they execute).
        """
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True

    def _raw(self) -> Optional[Event]:
        return self._event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EventHandle({!r})".format(self._event)
