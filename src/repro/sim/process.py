"""Coroutine-style processes on the callback simulator.

The kernel is callback-driven (fast, simple), but multi-step behaviours —
"wait 5s, grab the resource, wait for it, then loop" — read better as a
generator.  :class:`Process` runs such a generator on the simulator: the
generator ``yield``s *wait requests* and is resumed when they complete.

Supported yields:

* ``Delay(seconds)`` — resume after simulated time passes;
* ``WaitFor(armer)`` — call ``armer(resume)`` and resume when the process's
  own ``resume(value)`` callback fires (adapts anything callback-shaped,
  e.g. a PS job completion);
* a plain ``float``/``int`` — shorthand for ``Delay``.

Example::

    def worker(sim, pool):
        yield 1.0                       # think
        job = PSJob("step", 2.0)
        yield WaitFor(lambda done: pool.submit(
            PSJob("step", 2.0, on_complete=done)))
        # job finished; loop or stop

    Process(sim, worker(sim, pool)).start()
"""

from __future__ import annotations

from typing import Any, Callable, Generator, NamedTuple, Optional, Union

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class Delay(NamedTuple):
    """Yield to sleep for ``seconds`` of simulated time."""

    seconds: float


class WaitFor(NamedTuple):
    """Yield to wait for an external completion callback.

    ``armer`` is called with a one-shot ``resume(value)`` function; the
    process continues (receiving ``value``) when it is invoked.
    """

    armer: Callable[[Callable[[Any], None]], Any]


Yieldable = Union[Delay, WaitFor, float, int]


class Process:
    """Drives a generator of wait requests on the simulator."""

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Yieldable, Any, Any],
        name: str = "process",
    ) -> None:
        self.sim = sim
        self.generator = generator
        self.name = name
        self.done = False
        self.result: Optional[Any] = None
        self._started = False
        self._waiting = False

    def start(self) -> "Process":
        """Begin executing at the current simulation instant."""
        if self._started:
            raise SimulationError("process {!r} started twice".format(self.name))
        self._started = True
        self.sim.schedule(0.0, lambda: self._step(None), label="proc:{}".format(self.name))
        return self

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _step(self, value: Any) -> None:
        self._waiting = False
        try:
            request = self.generator.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            return
        self._arm(request)

    def _arm(self, request: Yieldable) -> None:
        if isinstance(request, (int, float)):
            request = Delay(float(request))
        if isinstance(request, Delay):
            if request.seconds < 0:
                raise SimulationError(
                    "process {!r} yielded a negative delay".format(self.name)
                )
            self._waiting = True
            self.sim.schedule(
                request.seconds,
                lambda: self._step(None),
                label="proc:{}:delay".format(self.name),
            )
            return
        if isinstance(request, WaitFor):
            self._waiting = True
            fired = {"done": False}

            def resume(value: Any = None) -> None:
                if fired["done"]:
                    raise SimulationError(
                        "process {!r} resumed twice for one wait".format(self.name)
                    )
                fired["done"] = True
                # Step on a fresh event so the resumer's stack unwinds first.
                self.sim.schedule(
                    0.0,
                    lambda: self._step(value),
                    label="proc:{}:resume".format(self.name),
                )

            request.armer(resume)
            return
        raise SimulationError(
            "process {!r} yielded unsupported {!r}".format(self.name, request)
        )
