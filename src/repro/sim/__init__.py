"""Discrete-event simulation kernel.

This subpackage is the bottom-most substrate: a deterministic, heap-based
event loop (:class:`~repro.sim.engine.Simulator`), named reproducible random
streams (:class:`~repro.sim.rng.RandomStreams`), virtual-time processor-sharing
resources (:class:`~repro.sim.resources.ProcessorSharingResource`), and online
statistics helpers used throughout the higher layers.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventHandle
from repro.sim.process import Delay, Process, WaitFor
from repro.sim.resources import ProcessorSharingResource, PSJob
from repro.sim.rng import RandomStreams
from repro.sim.stats import (
    Histogram,
    SlidingWindow,
    TimeWeightedValue,
    WelfordAccumulator,
)
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Simulator",
    "Event",
    "EventHandle",
    "ProcessorSharingResource",
    "PSJob",
    "Process",
    "Delay",
    "WaitFor",
    "RandomStreams",
    "WelfordAccumulator",
    "SlidingWindow",
    "TimeWeightedValue",
    "Histogram",
    "Tracer",
    "TraceRecord",
]
