"""Named deterministic random streams.

Every stochastic component in the simulation draws from its own named stream
so that (a) runs are reproducible from a single root seed, and (b) changing
how one component consumes randomness does not perturb any other component's
draws.  Streams are derived with :class:`numpy.random.SeedSequence` spawning
keyed by a stable hash of the stream name.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 32-bit integer key.

    Python's built-in ``hash`` is salted per process, so we use CRC32 which is
    stable across runs and platforms.
    """
    return zlib.crc32(name.encode("utf-8"))


class RandomStreams:
    """Factory of independent, reproducible random generators.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation.  Two :class:`RandomStreams` built
        from the same seed hand out identical streams for identical names,
        regardless of the order in which the streams are requested.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always returns the same generator object, so a
        component can re-request its stream cheaply.
        """
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_stable_key(name),)
            )
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = generator
        return generator

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream ``name``."""
        return float(self.stream(name).exponential(mean))

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """A multiplicative lognormal noise factor with median 1.

        ``sigma`` is the standard deviation of the underlying normal; 0 yields
        exactly 1.0 (useful to disable noise without branching in callers).
        """
        if sigma <= 0.0:
            return 1.0
        return float(self.stream(name).lognormal(mean=0.0, sigma=sigma))

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw in [low, high) from stream ``name``."""
        return float(self.stream(name).uniform(low, high))

    def choice_index(self, name: str, weights) -> int:
        """Draw an index with probability proportional to ``weights``."""
        weights = np.asarray(weights, dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError("choice_index needs at least one positive weight")
        return int(self.stream(name).choice(len(weights), p=weights / total))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RandomStreams(seed={}, streams={})".format(
            self.seed, sorted(self._streams)
        )
