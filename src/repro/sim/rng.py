"""Named deterministic random streams.

Every stochastic component in the simulation draws from its own named stream
so that (a) runs are reproducible from a single root seed, and (b) changing
how one component consumes randomness does not perturb any other component's
draws.  Streams are derived with :class:`numpy.random.SeedSequence` spawning
keyed by a stable hash of the stream name.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Dict, List, Tuple

import numpy as np


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 32-bit integer key.

    Python's built-in ``hash`` is salted per process, so we use CRC32 which is
    stable across runs and platforms.
    """
    return zlib.crc32(name.encode("utf-8"))


#: Draws prefetched per (stream, distribution) block.  A numpy scalar draw
#: costs over a microsecond in interpreter/dispatch overhead; vectorized
#: blocks produce the same values draw-for-draw (numpy fills arrays from
#: the bit stream in index order) at a fraction of that.
_BLOCK = 512


class RandomStreams:
    """Factory of independent, reproducible random generators.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation.  Two :class:`RandomStreams` built
        from the same seed hand out identical streams for identical names,
        regardless of the order in which the streams are requested.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        # choice_index() fast path: cached normalized cdf per weight vector.
        self._cdfs: Dict[Tuple[float, ...], List[float]] = {}
        # Prefetched draw blocks, keyed by (name, distribution, params):
        # ``[values, next_index]``.  Values are identical to scalar draws as
        # long as each stream is consumed through a single distribution
        # method with fixed parameters (which is how every component here
        # uses its streams — that is the whole point of named streams).
        # Mixing methods on one stream stays deterministic, but interleaves
        # the underlying bit stream differently than unbuffered scalar
        # draws would.
        self._blocks: Dict[tuple, list] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always returns the same generator object, so a
        component can re-request its stream cheaply.
        """
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_stable_key(name),)
            )
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = generator
        return generator

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream ``name``."""
        block = self._blocks.get((name, "exp", mean))
        if block is None or block[1] >= _BLOCK:
            block = [self.stream(name).exponential(mean, size=_BLOCK).tolist(), 0]
            self._blocks[(name, "exp", mean)] = block
        pos = block[1]
        block[1] = pos + 1
        return block[0][pos]

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """A multiplicative lognormal noise factor with median 1.

        ``sigma`` is the standard deviation of the underlying normal; 0 yields
        exactly 1.0 (useful to disable noise without branching in callers).
        """
        if sigma <= 0.0:
            return 1.0
        block = self._blocks.get((name, "logn", sigma))
        if block is None or block[1] >= _BLOCK:
            block = [
                self.stream(name).lognormal(mean=0.0, sigma=sigma, size=_BLOCK).tolist(),
                0,
            ]
            self._blocks[(name, "logn", sigma)] = block
        pos = block[1]
        block[1] = pos + 1
        return block[0][pos]

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw in [low, high) from stream ``name``."""
        block = self._blocks.get((name, "unif", low, high))
        if block is None or block[1] >= _BLOCK:
            block = [self.stream(name).uniform(low, high, size=_BLOCK).tolist(), 0]
            self._blocks[(name, "unif", low, high)] = block
        pos = block[1]
        block[1] = pos + 1
        return block[0][pos]

    def choice_index(self, name: str, weights) -> int:
        """Draw an index with probability proportional to ``weights``.

        Draw-for-draw identical to ``Generator.choice(len(weights),
        p=weights/total)`` — one uniform double inverted through the
        normalized cumulative distribution — but the cdf is cached per
        weight vector, which keeps this O(log n) with no array
        construction on the hot path.
        """
        key = tuple(weights)
        cdf = self._cdfs.get(key)
        if cdf is None:
            array = np.asarray(weights, dtype=float)
            total = array.sum()
            if total <= 0:
                raise ValueError("choice_index needs at least one positive weight")
            # Mirror numpy's Generator.choice exactly: normalize, cumsum,
            # re-normalize the cdf so its last entry is exactly 1.0.
            normalized = (array / total).cumsum()
            normalized /= normalized[-1]
            cdf = normalized.tolist()
            self._cdfs[key] = cdf
        block = self._blocks.get((name, "random"))
        if block is None or block[1] >= _BLOCK:
            block = [self.stream(name).random(_BLOCK).tolist(), 0]
            self._blocks[(name, "random")] = block
        pos = block[1]
        block[1] = pos + 1
        return bisect_right(cdf, block[0][pos])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RandomStreams(seed={}, streams={})".format(
            self.seed, sorted(self._streams)
        )
