"""The discrete-event simulation engine.

:class:`Simulator` owns the virtual clock and the event heap.  It is a plain
callback-driven engine: components schedule zero-argument callables at future
times and the engine fires them in ``(time, priority, sequence)`` order.  The
engine is single-threaded and fully deterministic given deterministic
callbacks, which is what makes every experiment in this repository exactly
reproducible from a seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.events import DEFAULT_PRIORITY, Event, EventHandle
from repro.sim.trace import Tracer


class Simulator:
    """Heap-based discrete-event simulator.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; when provided, every fired
        event is recorded, which is invaluable when debugging scheduling
        interleavings but too expensive to leave on for long runs.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = 0
        self._fired = 0
        self._running = False
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still on the heap (including tombstones)."""
        return len(self._heap)

    @property
    def fired_events(self) -> int:
        """Number of events executed so far."""
        return self._fired

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant with equal priority.
        """
        if delay < 0:
            raise SimulationError(
                "cannot schedule event {!r} with negative delay {}".format(label, delay)
            )
        return self.schedule_at(self._now + delay, callback, label, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``callback`` to fire at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule event {!r} at {} before now ({})".format(
                    label, time, self._now
                )
            )
        event = Event(time, priority, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.

        Returns False when the heap is exhausted, True otherwise.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            # Mark as consumed so that late cancel() calls become no-ops.
            event.cancelled = True
            self._fired += 1
            if self.tracer is not None:
                self.tracer.record(self._now, "event", event.label)
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are executed.  The clock is
        left at ``end_time`` even if the heap drains early, so periodic
        post-run measurements see a consistent horizon.
        """
        if end_time < self._now:
            raise SimulationError(
                "run_until({}) is in the past (now={})".format(end_time, self._now)
            )
        if self._running:
            raise SimulationError("run_until() called re-entrantly from a callback")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if event.time > end_time:
                    break
                self.step()
            self._now = max(self._now, end_time)
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the heap drains (or ``max_events`` events fired).

        Returns the number of events fired by this call.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from a callback")
        self._running = True
        fired = 0
        try:
            while self.step():
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Simulator(now={:.6f}, pending={}, fired={})".format(
            self._now, len(self._heap), self._fired
        )
