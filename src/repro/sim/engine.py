"""The discrete-event simulation engine.

:class:`Simulator` owns the virtual clock and the event heap.  It is a plain
callback-driven engine: components schedule zero-argument callables at future
times and the engine fires them in ``(time, priority, sequence)`` order.  The
engine is single-threaded and fully deterministic given deterministic
callbacks, which is what makes every experiment in this repository exactly
reproducible from a seed.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import DEFAULT_PRIORITY, Event
from repro.sim.trace import Tracer

#: Heap entries are ``(time, priority, seq, event)`` tuples so the heap
#: compares at C speed (seq is unique, so the event object never compares).
_HeapEntry = Tuple[float, int, int, Event]

#: Tombstone count past which (given tombstones outnumber live events)
#: the heap is compacted.  Keeps cancel O(1) amortised without letting a
#: cancel-heavy workload grow the heap without bound.
_COMPACT_MIN_TOMBSTONES = 256


class Simulator:
    """Heap-based discrete-event simulator.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; when provided, every fired
        event is recorded, which is invaluable when debugging scheduling
        interleavings but too expensive to leave on for long runs.
    """

    #: Declared past-deadline contract (see
    #: :mod:`repro.runtime.conformance`): on a virtual clock "the past" is
    #: always a bug, so ``schedule_at`` before ``now`` raises.
    past_deadline_policy = "raise"

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.now = 0.0
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._fired = 0
        self._tombstones = 0
        self._compactions = 0
        self._running = False
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events still on the heap (including tombstones)."""
        return len(self._heap)

    @property
    def fired_events(self) -> int:
        """Number of events executed so far."""
        return self._fired

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still sitting in the heap as tombstones."""
        return self._tombstones

    @property
    def compactions(self) -> int:
        """Times the heap was rebuilt to purge cancel tombstones."""
        return self._compactions

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant with equal priority.

        Returns the :class:`Event` itself, which is its own cancellation
        handle (``.cancel()`` / ``.active``).
        """
        if delay < 0:
            raise SimulationError(
                "cannot schedule event {!r} with negative delay {}".format(label, delay)
            )
        time = self.now + delay
        event = Event(time, priority, self._seq, callback, label, self)
        heappush(self._heap, (time, priority, self._seq, event))
        self._seq += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        label: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` to fire at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                "cannot schedule event {!r} at {} before now ({})".format(
                    label, time, self.now
                )
            )
        event = Event(time, priority, self._seq, callback, label, self)
        heappush(self._heap, (time, priority, self._seq, event))
        self._seq += 1
        return event

    def _note_cancelled(self) -> None:
        """An EventHandle cancelled a pending event (tombstone created)."""
        self._tombstones += 1
        if (
            self._tombstones >= _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._heap)
        ):
            # Rebuild without tombstones.  Entries carry a unique seq, so
            # heapify restores exactly the pop order the live events had.
            self._heap = [
                entry for entry in self._heap if not entry[3].cancelled
            ]
            heapify(self._heap)
            self._tombstones = 0
            self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.

        Returns False when the heap is exhausted, True otherwise.
        """
        heap = self._heap
        while heap:
            event = heappop(heap)[3]
            if event.cancelled:
                if self._tombstones > 0:
                    self._tombstones -= 1
                continue
            self.now = event.time
            # Mark as consumed so that late cancel() calls become no-ops.
            event.cancelled = True
            self._fired += 1
            if self.tracer is not None:
                self.tracer.record(self.now, "event", event.label)
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are executed.  The clock is
        left at ``end_time`` even if the heap drains early, so periodic
        post-run measurements see a consistent horizon.
        """
        if end_time < self.now:
            raise SimulationError(
                "run_until({}) is in the past (now={})".format(end_time, self.now)
            )
        if self._running:
            raise SimulationError("run_until() called re-entrantly from a callback")
        self._running = True
        heap = self._heap
        tracer = self.tracer
        try:
            while heap:
                time, _, _, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    if self._tombstones > 0:
                        self._tombstones -= 1
                    # A compaction in a callback may have replaced the list.
                    heap = self._heap
                    continue
                if time > end_time:
                    break
                heappop(heap)
                self.now = time
                # Mark as consumed so late cancel() calls become no-ops.
                event.cancelled = True
                self._fired += 1
                if tracer is not None:
                    tracer.record(time, "event", event.label)
                event.callback()
                heap = self._heap
            self.now = max(self.now, end_time)
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the heap drains (or ``max_events`` events fired).

        Returns the number of events fired by this call.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from a callback")
        self._running = True
        fired = 0
        try:
            while self.step():
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Simulator(now={:.6f}, pending={}, fired={})".format(
            self.now, len(self._heap), self._fired
        )
