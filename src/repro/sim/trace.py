"""Structured tracing for simulation debugging.

The tracer is deliberately simple: a bounded list of ``(time, kind, detail)``
records.  It is off by default everywhere; tests and debugging sessions attach
one to the :class:`~repro.sim.engine.Simulator` or to individual components.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    """One traced occurrence inside the simulation."""

    time: float
    kind: str
    detail: str


class Tracer:
    """Bounded in-memory trace sink.

    Parameters
    ----------
    capacity:
        Maximum number of records retained; older records are dropped first.
        ``None`` means unbounded (use only for short runs).
    """

    def __init__(self, capacity: Optional[int] = 100_000) -> None:
        self.capacity = capacity
        self._records: List[TraceRecord] = []
        self._dropped = 0

    def record(self, time: float, kind: str, detail: str = "") -> None:
        """Append a record, evicting the oldest when over capacity."""
        self._records.append(TraceRecord(time, kind, detail))
        if self.capacity is not None and len(self._records) > self.capacity:
            # Drop in chunks to keep amortised cost low.
            excess = len(self._records) - self.capacity
            del self._records[:excess]
            self._dropped += excess

    @property
    def dropped(self) -> int:
        """Number of records evicted due to the capacity bound."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(self, kind: str) -> List[TraceRecord]:
        """Return retained records of the given kind."""
        return [r for r in self._records if r.kind == kind]

    def clear(self) -> None:
        """Drop all retained records (the dropped counter is kept)."""
        self._records.clear()

    def format(self, limit: int = 50) -> str:
        """Human-readable dump of the most recent ``limit`` records."""
        lines = [
            "{:>12.6f}  {:<12} {}".format(r.time, r.kind, r.detail)
            for r in self._records[-limit:]
        ]
        return "\n".join(lines)
