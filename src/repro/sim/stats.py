"""Online statistics used across the simulation and controller layers.

Everything here is O(1) per observation (except percentile queries on the
histogram, which are O(bins)) so metric collection never dominates run time.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Tuple


class WelfordAccumulator:
    """Numerically stable streaming mean/variance (Welford's algorithm)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Sample mean; 0.0 when empty (convenient for reporting)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance; 0.0 with fewer than two observations."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "WelfordAccumulator") -> None:
        """Fold another accumulator into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return
        total_count = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total_count
        self._mean += delta * other.count / total_count
        self.count = total_count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "WelfordAccumulator(n={}, mean={:.6f}, sd={:.6f})".format(
            self.count, self.mean, self.stddev
        )


class SlidingWindow:
    """Fixed-capacity window of (time, value) samples with O(1) mean.

    Used by the Monitor for "average response time over the last sampling
    window" style measurements.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("SlidingWindow capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[Tuple[float, float]] = deque()
        self._sum = 0.0

    def add(self, time: float, value: float) -> None:
        """Append a sample, evicting the oldest if at capacity."""
        self._items.append((time, value))
        self._sum += value
        if len(self._items) > self.capacity:
            _, old = self._items.popleft()
            self._sum -= old

    def evict_older_than(self, cutoff: float) -> None:
        """Drop samples whose timestamp precedes ``cutoff``."""
        while self._items and self._items[0][0] < cutoff:
            _, old = self._items.popleft()
            self._sum -= old

    @property
    def mean(self) -> float:
        """Mean of retained sample values; 0.0 when empty."""
        if not self._items:
            return 0.0
        return self._sum / len(self._items)

    def values(self) -> List[float]:
        """Retained sample values, oldest first."""
        return [v for _, v in self._items]

    def __len__(self) -> int:
        return len(self._items)


class TimeWeightedValue:
    """Time-weighted average of a piecewise-constant signal.

    Feed it every change point; query the average over the elapsed span.
    Used for "average number of concurrent queries" and "average cost in
    flight" style metrics.
    """

    def __init__(self, initial: float = 0.0, start_time: float = 0.0) -> None:
        self._value = initial
        self._last_time = start_time
        self._start_time = start_time
        self._integral = 0.0

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError("TimeWeightedValue updates must be monotone in time")
        self._integral += self._value * (time - self._last_time)
        self._value = value
        self._last_time = time

    @property
    def current(self) -> float:
        """The most recently recorded value of the signal."""
        return self._value

    def average(self, now: float) -> float:
        """Time-weighted average over [start, now].

        On an empty span (``now <= start``, e.g. immediately after
        :meth:`reset`) the average degenerates to the current value — the
        limit of the average as the span shrinks to zero — so a caller
        sampling right at a reset boundary sees the live signal rather
        than a spurious zero.
        """
        span = now - self._start_time
        if span <= 0:
            return self._value
        integral = self._integral + self._value * (now - self._last_time)
        return integral / span

    def reset(self, now: float) -> None:
        """Restart averaging from ``now``, keeping the current value."""
        self._integral = 0.0
        self._last_time = now
        self._start_time = now


class Histogram:
    """Fixed-bin histogram over [low, high) with overflow/underflow bins.

    Percentile queries interpolate linearly inside the selected bin, which is
    plenty for latency-distribution reporting.  The true observed minimum
    and maximum are tracked exactly, so ``percentile(0)`` / ``percentile(100)``
    return the real data extremes even when mass sits in the underflow or
    overflow bins, and percentiles landing in those open-ended bins
    interpolate against the tracked extreme instead of being clamped to the
    bin edge.
    """

    def __init__(self, low: float, high: float, bins: int = 64) -> None:
        if high <= low:
            raise ValueError("Histogram needs high > low")
        if bins < 1:
            raise ValueError("Histogram needs >= 1 bin")
        self.low = low
        self.high = high
        self.bins = bins
        self._width = (high - low) / bins
        self._counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.min_value = math.inf
        self.max_value = -math.inf

    def add(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if value < self.low:
            self.underflow += 1
            return
        if value >= self.high:
            self.overflow += 1
            return
        index = int((value - self.low) / self._width)
        # Guard the upper edge against float rounding.
        if index >= self.bins:
            index = self.bins - 1
        self._counts[index] += 1

    def percentile(self, q: float) -> float:
        """Approximate the q-th percentile (q in [0, 100]).

        ``percentile(0)`` and ``percentile(100)`` are exact: the smallest
        and largest observation ever recorded.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        if q == 0:
            return self.min_value
        if q == 100:
            return self.max_value
        target = self.count * q / 100.0
        cumulative = float(self.underflow)
        if cumulative >= target:
            # Inside the underflow mass: interpolate over [min, low).
            fraction = target / self.underflow
            return self.min_value + fraction * (self.low - self.min_value)
        for index, bucket in enumerate(self._counts):
            if cumulative + bucket >= target and bucket > 0:
                fraction = (target - cumulative) / bucket
                return self.low + (index + fraction) * self._width
            cumulative += bucket
        if self.overflow:
            # Inside the overflow mass: interpolate over [high, max].
            fraction = (target - cumulative) / self.overflow
            return self.high + fraction * (self.max_value - self.high)
        return self.max_value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (parallel merge).

        The counterpart of :meth:`WelfordAccumulator.merge` for percentile
        reporting: per-shard response-time histograms merge into one
        cross-shard distribution without re-observing any sample.  Both
        histograms must share the same ``[low, high)`` range and bin
        count; bins, underflow and overflow sum, and the exact extremes
        combine as min/max, so ``percentile`` on the merged histogram is
        identical to a histogram fed the concatenated observations.
        """
        if (other.low, other.high, other.bins) != (self.low, self.high, self.bins):
            raise ValueError(
                "cannot merge Histogram([{}, {}), bins={}) into "
                "Histogram([{}, {}), bins={})".format(
                    other.low, other.high, other.bins,
                    self.low, self.high, self.bins,
                )
            )
        for index in range(self.bins):
            self._counts[index] += other._counts[index]
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.count += other.count
        if other.min_value < self.min_value:
            self.min_value = other.min_value
        if other.max_value > self.max_value:
            self.max_value = other.max_value

    def counts(self) -> List[int]:
        """Per-bin counts (excludes under/overflow)."""
        return list(self._counts)

    def to_dict(self) -> dict:
        """Plain-data state (JSON/pickle friendly); see :meth:`from_dict`."""
        return {
            "low": self.low,
            "high": self.high,
            "bins": self.bins,
            "counts": list(self._counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "count": self.count,
            "min_value": self.min_value if self.count else None,
            "max_value": self.max_value if self.count else None,
        }

    @staticmethod
    def from_dict(state: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        histogram = Histogram(
            float(state["low"]), float(state["high"]), int(state["bins"])
        )
        counts = list(state["counts"])
        if len(counts) != histogram.bins:
            raise ValueError(
                "histogram state has {} bins, header says {}".format(
                    len(counts), histogram.bins
                )
            )
        histogram._counts = [int(c) for c in counts]
        histogram.underflow = int(state["underflow"])
        histogram.overflow = int(state["overflow"])
        histogram.count = int(state["count"])
        if state.get("min_value") is not None:
            histogram.min_value = float(state["min_value"])
        if state.get("max_value") is not None:
            histogram.max_value = float(state["max_value"])
        return histogram
